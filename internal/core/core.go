// Package core ties the translator, the normalizer and the metrics into
// the paper's experiment pipeline: run a benchmark three ways — INIP(T)
// with a retranslation threshold, AVEP with optimization disabled, and
// INIP(train) on the training input — normalize the average profile to
// each initial profile's CFG, and compute the accuracy measures
// (Sd.BP/CP/LP and the range-based mismatch rates) that the paper's
// Figures 8-18 report.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dbt"
	"repro/internal/faultinject"
	"repro/internal/guest"
	"repro/internal/interp"
	"repro/internal/learned"
	"repro/internal/metrics"
	"repro/internal/navep"
	"repro/internal/obs"
	"repro/internal/perfmodel"
	"repro/internal/predict"
	"repro/internal/profile"
	"repro/internal/region"
	"repro/internal/resultcache"
)

// Target is a program under study: a builder that produces the guest
// image and input tape for a named input ("ref" or "train"). Builders
// may bake input-dependent parameters into the image's data segment —
// the code layout must not depend on the input, so that block addresses
// line up across profiles (as they do for real binaries).
type Target struct {
	Name  string
	Build func(input string) (*guest.Image, interp.Tape, error)
	// NewTape, when non-nil, returns a fresh tape equivalent to the one
	// Build yields for the same input. Images are read-only at run time,
	// so the scheduler then builds each input once and hands every run
	// the shared image with its own tape; without it, extra runs of the
	// same input fall back to a full Build.
	NewTape func(input string) (interp.Tape, error)
	// TapeID, when non-nil, returns a canonical identity string for the
	// input's tape: equal identities must mean byte-identical tape
	// streams. It is the input half of the result-cache key (the image
	// half is hashed from the built image), so targets without a TapeID
	// simply never cache — a tape whose identity cannot be declared is a
	// tape whose reuse cannot be proven.
	TapeID func(input string) string
}

// Compare evaluates an initial profile against an average profile and
// returns the paper's summary measures together with the normalized
// view. The avep snapshot must come from an unoptimized run.
func Compare(inip, avep *profile.Snapshot) (metrics.Summary, *navep.Result, error) {
	res, err := navep.Normalize(inip, avep)
	if err != nil {
		return metrics.Summary{}, nil, err
	}
	bp := make([]metrics.Item, 0, len(res.Blocks))
	for _, b := range res.Blocks {
		bp = append(bp, metrics.Item{Pred: b.BT, Avg: b.BM, W: b.W})
	}
	cp := make([]metrics.Item, 0, len(res.Traces))
	for _, r := range res.Traces {
		cp = append(cp, metrics.Item{Pred: r.CT, Avg: r.CM, W: r.W})
	}
	lp := make([]metrics.Item, 0, len(res.Loops))
	for _, r := range res.Loops {
		lp = append(lp, metrics.Item{Pred: r.LT, Avg: r.LM, W: r.W})
	}
	s := metrics.Summary{
		SdBP:       metrics.WeightedSD(bp),
		BPMismatch: metrics.MismatchRate(bp, metrics.BPBucket),
		HasRegions: len(inip.Regions) > 0,
		SdCP:       metrics.WeightedSD(cp),
		SdLP:       metrics.WeightedSD(lp),
		LPMismatch: metrics.MismatchRate(lp, metrics.LPBucket),
		Blocks:     len(bp),
		Traces:     len(cp),
		Loops:      len(lp),
	}
	return s, res, nil
}

// Options configures a benchmark study run.
type Options struct {
	// Thresholds is the ladder of retranslation thresholds to sweep.
	Thresholds []uint64
	// PoolTrigger passes through to the translator (default 8).
	PoolTrigger int
	// Perf enables the cycle model on every run; PerfParams overrides
	// its coefficients (zero value = defaults).
	Perf       bool
	PerfParams perfmodel.Params
	// MaxBlockExecs is the per-run safety budget (0 = none).
	MaxBlockExecs uint64
	// DisableFreeze and RegisterTwice pass through to the translator;
	// RegisterTwice defaults to on.
	DisableFreeze   bool
	NoRegisterTwice bool
	// KeepSnapshots retains the per-threshold INIP snapshots in the
	// result (memory-heavy; used by the offline tools).
	KeepSnapshots bool
	// KeepNormalized retains the full per-threshold *navep.Result. The
	// figure generators only read Summary/ops/cycles, so the study
	// leaves this off; tools that inspect per-block normalized rows turn
	// it on.
	KeepNormalized bool
	// IndependentRuns forces every INIP(T) run to execute the guest
	// itself instead of replaying the shared reference trace
	// (dbt.RunMulti). Results are identical either way — the shared
	// trace exists purely to avoid re-executing the same instruction
	// stream once per threshold — so this is a cross-check and
	// measurement knob.
	IndependentRuns bool
	// Predictors names the dynamic branch predictors (internal/predict)
	// to drive off the reference trace as read-only observers: the
	// guest still executes once and profiling counters are untouched.
	// Empty runs no predictors, and every existing output is
	// byte-identical to a run without the field.
	Predictors []string
	// SamplePeriods is the ladder of sampled-profiling periods to sweep
	// (dbt.Config.SamplePeriod): for each period the whole INIP(T)
	// threshold ladder is rerun with sampled counters and compared to
	// the full-instrumentation AVEP, filling BenchmarkResult.Sampling.
	// In shared-trace mode the sampled runs ride the same reference
	// trace as extra followers — the guest still executes exactly once —
	// so the full-instrumentation figures stay byte-identical to a run
	// without the field. Empty runs no sampled ladders.
	SamplePeriods []uint64
	// SampleSeed seeds the stride phase of every sampled run
	// (dbt.Config.SampleSeed); it participates in the sampled cache
	// keys.
	SampleSeed uint64
	// Learned, when non-nil, collects the profile-free learned
	// predictor's per-benchmark data off the reference trace: static
	// branch-site features extracted from the image plus per-site
	// outcome tallies observed on the shared trace. Collection rides
	// the existing observer rail — the guest still executes once and
	// every legacy output is byte-identical to a run without the field.
	// Training happens at the study level (the model must never see the
	// benchmark it is scored on), so the per-benchmark result is data,
	// not a fitted model. The config's Fingerprint keys the `ls` cache
	// entries.
	Learned *learned.Config
	// Workers bounds RunBenchmark's own scheduler when it is not given
	// one (default GOMAXPROCS).
	Workers int
	// Timing, when non-nil, accumulates per-phase durations and run
	// volume across all units of the benchmark.
	Timing *Timing
	// Trace, when non-nil, receives one flight-recorder event per
	// completed pipeline span. Spans are measured over exactly the
	// intervals the Timing phase buckets accumulate, so per-phase trace
	// sums reconcile with the study's Perf totals.
	Trace *obs.Recorder
	// Faults, when non-nil, is the armed fault-injection plan the
	// pipeline consults at its injection points: the build cache, the
	// translator config (guest traps) and the unit wrapper (delays,
	// panics). A nil plan injects nothing.
	Faults *faultinject.Plan
	// Cache, when non-nil, memoizes expensive unit outputs on disk (see
	// cache.go for the exact contract: lookup before a unit executes,
	// store only on clean completion, never under an armed fault plan or
	// for targets without a TapeID).
	Cache *resultcache.Store
	// CacheVerify makes every cache hit a differential self-check: the
	// unit executes anyway and a divergence between computed and cached
	// values is a hard unit error.
	CacheVerify bool
	// CacheContext carries caller-level parameters that determine
	// results but are invisible in the image, tape and config (the study
	// puts its scale here). It participates verbatim in every cache key.
	CacheContext string
	// MaxAttempts bounds how many times a failing unit body is run
	// before the failure is permanent (0 or 1 = no retry). Attempts
	// re-enter the unit from the top — the build cache does not memoize
	// errors, so a transient build failure is retried for real.
	MaxAttempts int
	// RetryBackoff is the wait before the second attempt, doubling on
	// each further attempt. Zero retries immediately. The wait aborts
	// early when the scheduler cancels.
	RetryBackoff time.Duration
}

// Timing aggregates where a study's wall-clock went. Durations are
// summed across concurrently-running units, so on a multicore box the
// phase totals add up to more than the elapsed wall time.
type Timing struct {
	Build     atomic.Int64 // ns spent building images/tapes
	RefRuns   atomic.Int64 // ns executing reference-input runs (AVEP + INIP ladder)
	TrainRuns atomic.Int64 // ns executing training-input runs
	Compare   atomic.Int64 // ns normalizing and computing metrics
	// BlocksExecuted totals dynamic block executions over all run units
	// (each profiling context counts its own pass over the trace).
	BlocksExecuted atomic.Uint64
	// SampledUnits counts executed (cold) sampled-profiling contexts and
	// SampledProfilingOps totals their actual counter updates — sampled
	// units, not scaled estimates, so the ratio against the
	// full-instrumentation ops is the real cost side of the sampling
	// frontier. Warm (cache-replayed) sampled ladders add nothing, like
	// BlocksExecuted.
	SampledUnits        atomic.Int64
	SampledProfilingOps atomic.Uint64
	// Retries counts failed unit attempts that were run again.
	Retries atomic.Int64

	// Engine-counter aggregates (see dbt.RunStats), summed over every
	// profiling context of every run unit.
	Translations      atomic.Int64
	Retranslations    atomic.Int64
	OptimizationWaves atomic.Int64
	RegionsFormed     atomic.Int64
	RegionsDissolved  atomic.Int64
	FastDispatches    atomic.Uint64
	GenericDispatches atomic.Uint64
	CacheLookups      atomic.Uint64
	InterruptPolls    atomic.Uint64
	FreezeEvents      atomic.Uint64
}

// AddRunStats folds one run's engine counters into the aggregate.
func (t *Timing) AddRunStats(st *dbt.RunStats) {
	t.BlocksExecuted.Add(st.BlocksExecuted)
	t.Translations.Add(int64(st.BlocksTranslated))
	t.Retranslations.Add(int64(st.Retranslations))
	t.OptimizationWaves.Add(int64(st.OptimizationWaves))
	t.RegionsFormed.Add(int64(st.RegionsFormed))
	t.RegionsDissolved.Add(int64(st.RegionsDissolved))
	t.FastDispatches.Add(st.FastDispatches)
	t.GenericDispatches.Add(st.GenericDispatches)
	t.CacheLookups.Add(st.CacheLookups)
	t.InterruptPolls.Add(st.InterruptPolls)
	t.FreezeEvents.Add(st.FreezeEvents)
}

// ThresholdResult is the outcome of one INIP(T) run compared to AVEP.
type ThresholdResult struct {
	T            uint64
	Summary      metrics.Summary
	Normalized   *navep.Result
	ProfilingOps uint64
	Cycles       float64
	Stats        dbt.RunStats
	Snapshot     *profile.Snapshot // nil unless Options.KeepSnapshots
}

// SampleThresholdResult is one rung of a sampled-profiling ladder: the
// INIP(T) run rerun with dbt.Config.SamplePeriod set, compared against
// the same full-instrumentation AVEP as the main ladder.
type SampleThresholdResult struct {
	T       uint64          `json:"t"`
	Summary metrics.Summary `json:"summary"`
	// ProfilingOps is the run's actual counter-update total — sampled
	// events, not scaled estimates — so its ratio against the matching
	// full-instrumentation rung's ProfilingOps is the measured profiling
	// cost of the period.
	ProfilingOps uint64  `json:"profiling_ops"`
	Cycles       float64 `json:"cycles"`
}

// SamplePeriodResult is the whole threshold ladder rerun at one sampled
// profiling period, in Options.Thresholds order.
type SamplePeriodResult struct {
	Period uint64                  `json:"period"`
	PerT   []SampleThresholdResult `json:"per_t"`
}

// UnitFailure records one unit whose failure was absorbed under the
// Degrade policy: which unit of which benchmark failed, after how many
// attempts, and with what error. A benchmark with failures has
// incomplete measurement data and is excluded from figure aggregation.
type UnitFailure struct {
	Bench string `json:"bench"`
	// Unit is the failing span kind (obs.Unit* constants).
	Unit string `json:"unit"`
	// T is the effective threshold for per-threshold units, 0 otherwise.
	T uint64 `json:"t,omitempty"`
	// Attempts is how many times the unit body ran before giving up.
	Attempts int `json:"attempts"`
	// Err is the final attempt's error, verbatim.
	Err string `json:"err"`
}

// BenchmarkResult is the complete study output for one benchmark.
type BenchmarkResult struct {
	Name string
	// AVEP is the average profile of the reference input.
	AVEP *profile.Snapshot
	// AVEPCycles is the cycle cost of running unoptimized forever.
	AVEPCycles float64
	// Train compares INIP(train) to AVEP (blocks only, as in the
	// paper: unoptimized runs carry no regions).
	Train metrics.Summary
	// TrainRegions compares INIP(train) to AVEP after forming regions
	// offline over the training profile (the paper's section-5 future
	// work, which makes Sd.CP(train) and Sd.LP(train) computable).
	// Regions are formed at the reference threshold of 2000.
	TrainRegions metrics.Summary
	// TrainOps is the profiling-operation total of the training run,
	// the normalization base of Figure 18.
	TrainOps uint64
	// Results holds one entry per threshold, in ladder order.
	Results []ThresholdResult
	// Predictors holds one accuracy tally per requested dynamic
	// predictor, in Options.Predictors order. The branch stream is the
	// reference trace, so the tallies are threshold-independent and
	// identical across worker counts and dispatch paths.
	Predictors []predict.Result
	// Sampling holds one rerun ladder per requested sampled-profiling
	// period, in Options.SamplePeriods order. Nil when no periods were
	// requested.
	Sampling []SamplePeriodResult
	// Learned is the learned-predictor collection (static site features
	// + reference-trace tallies), present when Options.Learned was set.
	// Like Predictors it is threshold-independent and bit-identical
	// across worker counts, run modes and dispatch paths.
	Learned *learned.BenchData
	// Failures lists the units that failed permanently under the Degrade
	// policy, in completion order (callers that need a stable order sort
	// by unit and threshold). Empty on a clean run; under FailFast the
	// study errors out instead of recording failures.
	Failures []UnitFailure
}

func (o *Options) dbtConfig(input string, threshold uint64, optimize bool) dbt.Config {
	cfg := dbt.Config{
		Input:         input,
		Threshold:     threshold,
		Optimize:      optimize,
		PoolTrigger:   o.PoolTrigger,
		RegisterTwice: !o.NoRegisterTwice,
		DisableFreeze: o.DisableFreeze,
		MaxBlockExecs: o.MaxBlockExecs,
	}
	if o.Perf {
		params := o.PerfParams
		if params == (perfmodel.Params{}) {
			params = perfmodel.DefaultParams()
		}
		cfg.Perf = perfmodel.NewAccumulator(params)
	}
	return cfg
}

// buildCache builds each input of a target once. The first caller gets
// the tape Build produced; later callers of the same input get the
// shared (read-only) image with a fresh tape from Target.NewTape, or a
// full rebuild when the target has no tape factory. Errors are not
// memoized — a failed build is retried by the next caller, which is
// what lets the retry machinery recover from transient build faults.
type buildCache struct {
	t      Target
	faults *faultinject.Plan
	mu     sync.Mutex
	// mu guards entries and every entry. Holding it across Build
	// serializes a target's ref and train builds; builds are a rounding
	// error next to the runs, and serializing is what makes a failed
	// build safely retryable.
	entries map[string]*buildEntry
	builds  atomic.Int64 // Build invocations, for tests
}

type buildEntry struct {
	built    bool
	img      *guest.Image
	tape     interp.Tape
	tapeUsed bool
}

func newBuildCache(t Target, faults *faultinject.Plan) *buildCache {
	return &buildCache{t: t, faults: faults, entries: make(map[string]*buildEntry)}
}

func (c *buildCache) get(input string) (*guest.Image, interp.Tape, error) {
	// Injected build faults fire before the real builder is consulted
	// and bypass the cache entirely, so a bounded fault ("*k") leaves
	// later attempts a clean build to succeed with.
	if err := c.faults.BuildError(c.t.Name, input); err != nil {
		return nil, nil, fmt.Errorf("core: build %s/%s: %w", c.t.Name, input, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[input]
	if e == nil {
		e = &buildEntry{}
		c.entries[input] = e
	}
	if !e.built {
		c.builds.Add(1)
		img, tape, err := c.t.Build(input)
		if err != nil {
			return nil, nil, fmt.Errorf("core: build %s/%s: %w", c.t.Name, input, err)
		}
		e.built, e.img, e.tape = true, img, tape
	}
	if !e.tapeUsed {
		e.tapeUsed = true
		return e.img, e.tape, nil
	}
	if c.t.NewTape != nil {
		tape, err := c.t.NewTape(input)
		if err != nil {
			return nil, nil, fmt.Errorf("core: build %s/%s: %w", c.t.Name, input, err)
		}
		return e.img, tape, nil
	}
	// No tape factory: tapes are stateful, so a fresh run needs a fresh
	// build.
	c.builds.Add(1)
	img, tape, err := c.t.Build(input)
	if err != nil {
		return nil, nil, fmt.Errorf("core: build %s/%s: %w", c.t.Name, input, err)
	}
	return img, tape, err
}

// benchRun is the in-flight state of one scheduled benchmark: the AVEP
// snapshot memo the comparison stages wait for, the training snapshot,
// and the count of outstanding work items.
type benchRun struct {
	s      *Scheduler
	t      Target
	opts   Options
	out    *BenchmarkResult
	onDone func(*BenchmarkResult)
	build  *buildCache

	// refImgHash and trainImgHash are the content hashes of the built
	// images, filled by the run units before they spawn (or inline-run)
	// any unit that keys a cache entry off them; like out.AVEP they are
	// then read lock-free under the spawn's happens-before edge.
	refImgHash   string
	trainImgHash string

	mu            sync.Mutex
	avep          *profile.Snapshot // set once by the reference unit
	train         *profile.Snapshot // set once by the training unit
	trainCompared bool
	remaining     int
}

// finishItem retires one work item; the last one reports the result.
func (b *benchRun) finishItem() {
	b.mu.Lock()
	b.remaining--
	done := b.remaining == 0
	b.mu.Unlock()
	if done && b.onDone != nil {
		b.onDone(b.out)
	}
}

// record closes a measured span: the duration lands in the matching
// Timing phase bucket and — when tracing is on — one flight-recorder
// event is emitted. Both observers are fed from the same interval, so
// trace per-phase sums reconcile exactly with the Perf phase totals.
func (b *benchRun) record(unit string, threshold uint64, worker int, start time.Time, blocks uint64, err error) {
	b.recordEv(unit, threshold, worker, start, obs.Event{Blocks: blocks}, err)
}

// recordRun is record for executed run spans: the engines' hot-loop
// counters ride along in the trace event, so -tracesum can report
// blocks/s, the dispatch split and the cache-lookup rate from the trace
// alone.
func (b *benchRun) recordRun(unit string, threshold uint64, worker int, start time.Time, stats ...*dbt.RunStats) {
	var ev obs.Event
	for _, st := range stats {
		ev.Blocks += st.BlocksExecuted
		ev.Fast += st.FastDispatches
		ev.Generic += st.GenericDispatches
		ev.Lookups += st.CacheLookups
	}
	b.recordEv(unit, threshold, worker, start, ev, nil)
}

// recordEv is the shared body of record/recordRun; ev carries the
// span's counter payload, identity and timeline are filled here.
func (b *benchRun) recordEv(unit string, threshold uint64, worker int, start time.Time, ev obs.Event, err error) {
	dur := time.Since(start)
	if tm := b.opts.Timing; tm != nil {
		switch unit {
		case obs.UnitBuild:
			tm.Build.Add(int64(dur))
		case obs.UnitRef, obs.UnitSample:
			tm.RefRuns.Add(int64(dur))
		case obs.UnitTrain:
			tm.TrainRuns.Add(int64(dur))
		case obs.UnitCompare, obs.UnitTrainCompare, obs.UnitSampleCompare:
			tm.Compare.Add(int64(dur))
		}
	}
	ev.Bench, ev.Unit, ev.T, ev.Worker = b.t.Name, unit, threshold, worker
	b.opts.Trace.RecordEvent(ev, start, dur, err)
}

// addRunStats folds one run's engine counters into the study aggregate.
func (b *benchRun) addRunStats(st *dbt.RunStats) {
	if b.opts.Timing != nil {
		b.opts.Timing.AddRunStats(st)
	}
}

// addSampleStats folds one executed sampled context's profiling volume
// into the study aggregate. Called only on cold paths, so warm reruns
// report zero sampled units, mirroring BlocksExecuted.
func (b *benchRun) addSampleStats(snap *profile.Snapshot) {
	if tm := b.opts.Timing; tm != nil {
		tm.SampledUnits.Add(1)
		tm.SampledProfilingOps.Add(snap.ProfilingOps)
	}
}

// ScheduleBenchmark decomposes the three-way study of one target into
// run units on the scheduler: the reference unit (AVEP — and, unless
// IndependentRuns is set, the whole INIP ladder replayed over its
// trace), the training unit, one comparison unit per threshold, and the
// training comparison. onDone is called with the completed result; on
// failure the scheduler records the first error instead.
//
// Dependencies are handled by spawning: the per-threshold comparisons
// need the AVEP snapshot, so the reference unit schedules them after the
// memo is filled; the training comparison runs inline in whichever of
// the two run units finishes second. No unit ever holds a pool slot
// while waiting, so the pipeline cannot deadlock at any pool size.
func ScheduleBenchmark(s *Scheduler, t Target, opts Options, onDone func(*BenchmarkResult)) {
	scheduleBenchmark(s, t, opts, onDone)
}

// scheduleBenchmark is ScheduleBenchmark returning the in-flight state,
// which the fail-fast regression tests inspect (results must stay
// untouched when units are dropped).
func scheduleBenchmark(s *Scheduler, t Target, opts Options, onDone func(*BenchmarkResult)) *benchRun {
	b := &benchRun{
		s:      s,
		t:      t,
		opts:   opts,
		out:    &BenchmarkResult{Name: t.Name, Results: make([]ThresholdResult, len(opts.Thresholds))},
		onDone: onDone,
		build:  newBuildCache(t, opts.Faults),
	}
	if len(opts.SamplePeriods) > 0 {
		b.out.Sampling = make([]SamplePeriodResult, len(opts.SamplePeriods))
	}
	// Work items: reference unit, training unit, training comparison,
	// one comparison per threshold, and one sampled-ladder comparison
	// per requested sample period.
	b.remaining = len(opts.Thresholds) + 3 + len(opts.SamplePeriods)
	if t.Build == nil {
		s.GoW(func(w int) error {
			_, err := b.execute(obs.UnitBuild, 0, w, b.cancelAll, func() error {
				return fmt.Errorf("core: target %q has no builder", t.Name)
			})
			return err
		})
		return b
	}
	s.GoW(b.refUnit)
	s.GoW(b.trainUnit)
	return b
}

// dbtConfig attaches the scheduler's cancellation channel and any
// armed guest-trap fault for this (bench, input).
func (b *benchRun) dbtConfig(input string, threshold uint64, optimize bool) dbt.Config {
	cfg := b.opts.dbtConfig(input, threshold, optimize)
	cfg.Interrupt = b.s.Done()
	if n, ok := b.opts.Faults.Trap(b.t.Name, input); ok {
		cfg.TrapAfter = n
	}
	return cfg
}

// execute runs one unit body under the scheduler's failure policy,
// with fault injection and bounded retry. The outcomes:
//
//   - success: (true, nil) — the body has done its own work-item
//     accounting (spawning dependents, finishItem on the items it
//     completed).
//   - absorbed failure (Degrade): (false, nil) — the failure is
//     recorded in the result and cancel has retired the unit's own
//     item plus every dependent item that will now never be spawned,
//     so the benchmark still completes and reports.
//   - propagated failure (FailFast, or the pool is cancelling):
//     (false, err) — the caller hands err to the scheduler, which
//     cancels the study with it. No items are retired; the pool is
//     collapsing and onDone must not fire.
func (b *benchRun) execute(unit string, t uint64, worker int, cancel func(), f func() error) (ok bool, err error) {
	attempts, err := b.runAttempts(unit, t, worker, f)
	if err == nil {
		return true, nil
	}
	if b.s.Policy() != Degrade || errors.Is(err, dbt.ErrInterrupted) || b.s.Stopped() {
		return false, err
	}
	b.recordFailure(unit, t, attempts, err)
	cancel()
	return false, nil
}

// runAttempts runs the body up to Options.MaxAttempts times with
// doubling backoff, reporting how many attempts ran and the final
// error. Attempts stop early when the pool is cancelling or the run
// was interrupted — retrying cancelled work would only delay shutdown.
func (b *benchRun) runAttempts(unit string, t uint64, worker int, f func() error) (attempts int, err error) {
	max := b.opts.MaxAttempts
	if max < 1 {
		max = 1
	}
	for attempts = 1; ; attempts++ {
		err = b.protect(unit, t, f)
		if err == nil || attempts >= max || errors.Is(err, dbt.ErrInterrupted) || b.s.Stopped() {
			return attempts, err
		}
		if tm := b.opts.Timing; tm != nil {
			tm.Retries.Add(1)
		}
		b.opts.Trace.Record(b.t.Name, obs.UnitRetry, t, worker, time.Now(), 0, 0, err)
		if d := b.opts.RetryBackoff; d > 0 {
			select {
			case <-time.After(d << (attempts - 1)):
			case <-b.s.Done():
				return attempts, err
			}
		}
	}
}

// protect runs the unit body once: injected delays and panics for this
// site fire first, and any panic — injected or a genuine defect in the
// body — is converted into an ordinary unit error so the failure
// policy applies to it like to any other failure.
func (b *benchRun) protect(unit string, t uint64, f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: %s unit of %s panicked: %v", unit, b.t.Name, r)
		}
	}()
	if d := b.opts.Faults.Delay(b.t.Name, unit, t); d > 0 {
		select {
		case <-time.After(d):
		case <-b.s.Done():
		}
	}
	if msg, ok := b.opts.Faults.PanicMessage(b.t.Name, unit, t); ok {
		panic(msg)
	}
	return f()
}

// recordFailure appends one absorbed failure under the result lock.
// The append happens before the failing unit retires its work items,
// and finishItem takes the same lock, so when the last item retires
// and onDone publishes the result every failure is visible.
func (b *benchRun) recordFailure(unit string, t uint64, attempts int, err error) {
	b.mu.Lock()
	b.out.Failures = append(b.out.Failures, UnitFailure{
		Bench:    b.t.Name,
		Unit:     unit,
		T:        t,
		Attempts: attempts,
		Err:      err.Error(),
	})
	b.mu.Unlock()
}

// cancelRef retires everything the reference unit owes when it fails:
// its own work item, every ladder comparison it would have spawned,
// every sampled-ladder comparison (unreachable without the AVEP
// snapshot), and the training comparison (likewise).
func (b *benchRun) cancelRef() {
	b.retireTrainCompareOnce()
	for range b.opts.Thresholds {
		b.finishItem()
	}
	for range b.opts.SamplePeriods {
		b.finishItem()
	}
	b.finishItem()
}

// cancelTrain retires the training unit's item and the training
// comparison when the training run fails.
func (b *benchRun) cancelTrain() {
	b.retireTrainCompareOnce()
	b.finishItem()
}

// cancelAll retires every work item of a benchmark none of whose units
// can run (no builder).
func (b *benchRun) cancelAll() {
	b.cancelRef()
	b.cancelTrain()
}

// retireTrainCompareOnce retires the training-comparison work item if
// it has not yet run and never will. The trainCompared flag guards the
// case where both run units fail and each tries to retire it.
func (b *benchRun) retireTrainCompareOnce() {
	b.mu.Lock()
	retire := !b.trainCompared
	if retire {
		b.trainCompared = true
	}
	b.mu.Unlock()
	if retire {
		b.finishItem()
	}
}

// suiteObserver adapts a predict.Suite to the dbt trace observer: one
// Record call per resolved conditional branch, in architectural order.
type suiteObserver struct{ suite *predict.Suite }

func (o suiteObserver) ObserveBranches(evs []dbt.BranchEvent) {
	for _, ev := range evs {
		o.suite.Record(ev.PC, ev.Taken)
	}
}

// newPredictSuite builds the requested predictor set and its trace
// observer. Unknown names are a unit error here — study.Config and the
// flag layer validate earlier, so this guards direct API use.
func newPredictSuite(names []string) (*predict.Suite, []dbt.TraceObserver, error) {
	if len(names) == 0 {
		return nil, nil, nil
	}
	suite, err := predict.NewSuite(names)
	if err != nil {
		return nil, nil, err
	}
	return suite, []dbt.TraceObserver{suiteObserver{suite}}, nil
}

// settlePredictors publishes the predictor tallies of a cold reference
// run and settles their cache entry (store on miss, differential check
// on a verify-mode hit). No-op without predictors.
func (b *benchRun) settlePredictors(suite *predict.Suite, useCache, bpHit bool, bpKey resultcache.Key, bpCached bpEntry, worker int) error {
	if suite == nil {
		return nil
	}
	b.out.Predictors = suite.Results()
	if useCache {
		return b.cacheSettle(bpKey, bpHit, bpEntry{Results: b.out.Predictors}, bpCached, worker)
	}
	return nil
}

// newLearnedCollector extracts the static branch-site features and
// builds the tally observer for the learned predictor class. It returns
// no observer when the class is off. Extraction is pure static analysis
// of the image (internal/cfg + a successor-closure walk), traced under
// its own flight-recorder unit.
func (b *benchRun) newLearnedCollector(img *guest.Image, worker int) (*learned.Collector, []dbt.TraceObserver, error) {
	if b.opts.Learned == nil {
		return nil, nil, nil
	}
	start := time.Now()
	sites, err := learned.ExtractSites(img)
	b.record(obs.UnitLearnedCollect, 0, worker, start, 0, err)
	if err != nil {
		return nil, nil, fmt.Errorf("core: learned feature extraction of %s: %w", b.t.Name, err)
	}
	col := learned.NewCollector(sites)
	return col, []dbt.TraceObserver{col}, nil
}

// settleLearned publishes the learned collection of a cold reference
// run and settles its cache entry. No-op when the class is off.
func (b *benchRun) settleLearned(col *learned.Collector, useCache, lsHit bool, lsKey resultcache.Key, lsCached lsEntry, worker int) error {
	if col == nil {
		return nil
	}
	data := col.BenchData(b.t.Name)
	b.out.Learned = &data
	if useCache {
		computed := lsEntry{Fingerprint: b.opts.Learned.Fingerprint(), Data: data}
		return b.cacheSettle(lsKey, lsHit, computed, lsCached, worker)
	}
	return nil
}

// distinctRungs deduplicates the threshold ladder: a ladder scaled far
// down collapses — several paper-unit rungs clamp to the same effective
// threshold — and identical configs would run identical engines. It
// returns the distinct thresholds in first-appearance order and
// rungs[j], the ladder indexes served by distinct[j]; results computed
// once per distinct threshold fan out to every collapsed rung under its
// own paper-unit label.
func (b *benchRun) distinctRungs() (distinct []uint64, rungs [][]int) {
	byThreshold := make(map[uint64]int, len(b.opts.Thresholds))
	for i, threshold := range b.opts.Thresholds {
		if j, ok := byThreshold[threshold]; ok {
			rungs[j] = append(rungs[j], i)
			continue
		}
		byThreshold[threshold] = len(rungs)
		rungs = append(rungs, []int{i})
		distinct = append(distinct, threshold)
	}
	return distinct, rungs
}

// sampleConfigs builds one sampled-profiling period's configs over the
// distinct thresholds: the INIP(T) config with the sampling stride
// switched on.
func (b *benchRun) sampleConfigs(period uint64, distinct []uint64) []dbt.Config {
	cfgs := make([]dbt.Config, len(distinct))
	for j, threshold := range distinct {
		cfg := b.dbtConfig("ref", threshold, true)
		cfg.SamplePeriod = period
		cfg.SampleSeed = b.opts.SampleSeed
		cfgs[j] = cfg
	}
	return cfgs
}

// refUnit produces the AVEP snapshot (and, in shared-trace mode, every
// INIP(T) snapshot alongside it), then fans out the comparison units.
func (b *benchRun) refUnit(worker int) error {
	_, err := b.execute(obs.UnitRef, 0, worker, b.cancelRef, func() error {
		return b.refBody(worker)
	})
	return err
}

func (b *benchRun) refBody(worker int) error {
	start := time.Now()
	img, tape, err := b.build.get("ref")
	b.record(obs.UnitBuild, 0, worker, start, 0, err)
	if err != nil {
		return err
	}
	useCache := b.cacheUsable()
	if useCache {
		b.refImgHash = img.ContentHash()
	}

	// Dynamic predictors observe the reference trace; their tally is
	// threshold-independent and lives under its own cache entry, so a
	// warm rerun replays it without executing a guest block. A bp miss
	// with a warm reference entry falls back to the cold path — the
	// trace must be re-executed once to feed the predictors.
	preds := b.opts.Predictors
	var bpKey resultcache.Key
	var bpCached bpEntry
	bpHit := false
	if useCache && len(preds) > 0 {
		bpKey = b.bpCacheKey(b.refImgHash)
		bpHit = b.cacheLookup(bpKey, &bpCached, worker) && bpEntryMatches(&bpCached, preds)
	}

	// The learned-predictor collection rides the same trace under its
	// own threshold-independent entry, exactly like bp: a warm rerun
	// replays it, a miss forces the cold path so the tallies can be
	// re-observed.
	var lsKey resultcache.Key
	var lsCached lsEntry
	lsHit := false
	if useCache && b.opts.Learned != nil {
		lsKey = b.lsCacheKey(b.refImgHash)
		lsHit = b.cacheLookup(lsKey, &lsCached, worker) &&
			lsEntryMatches(&lsCached, b.opts.Learned.Fingerprint(), b.t.Name)
	}
	lsWarm := b.opts.Learned == nil || lsHit

	avepCfg := b.dbtConfig("ref", 0, false)
	if b.opts.IndependentRuns {
		var key resultcache.Key
		var cached runOutput
		hit := false
		if useCache {
			key = b.runCacheKey(b.refImgHash, "ref", avepCfg)
			hit = b.cacheLookup(key, &cached, worker) && cached.Snapshot != nil
		}
		if hit && (len(preds) == 0 || bpHit) && lsWarm && !b.opts.CacheVerify {
			if len(preds) > 0 {
				b.out.Predictors = bpCached.Results
			}
			if b.opts.Learned != nil {
				data := lsCached.Data
				b.out.Learned = &data
			}
			b.recordAVEP(cached.Snapshot, cached.Cycles)
		} else {
			suite, observers, err := newPredictSuite(preds)
			if err != nil {
				return err
			}
			col, lobs, err := b.newLearnedCollector(img, worker)
			if err != nil {
				return err
			}
			observers = append(observers, lobs...)
			start = time.Now()
			var avep *profile.Snapshot
			var stats *dbt.RunStats
			if suite == nil && col == nil {
				avep, stats, err = dbt.Run(img, tape, avepCfg)
			} else {
				// Single-config RunMulti is the same driver loop as
				// dbt.Run — snapshots and stats are bit-identical —
				// with the branch stream exposed to the observers.
				var snaps []*profile.Snapshot
				var statss []*dbt.RunStats
				snaps, statss, err = dbt.RunMultiObserved(img, tape, []dbt.Config{avepCfg}, observers)
				if err == nil {
					avep, stats = snaps[0], statss[0]
				}
			}
			if err != nil {
				err = fmt.Errorf("core: AVEP run of %s: %w", b.t.Name, err)
				b.record(obs.UnitRef, 0, worker, start, 0, err)
				return err
			}
			b.addRunStats(stats)
			b.recordRun(obs.UnitRef, 0, worker, start, stats)
			if useCache {
				computed := runOutput{Snapshot: avep, Stats: *stats, Cycles: cyclesOf(avepCfg)}
				if err := b.cacheSettle(key, hit, computed, cached, worker); err != nil {
					return err
				}
			}
			if err := b.settlePredictors(suite, useCache, bpHit, bpKey, bpCached, worker); err != nil {
				return err
			}
			if err := b.settleLearned(col, useCache, lsHit, lsKey, lsCached, worker); err != nil {
				return err
			}
			b.recordAVEP(avep, cyclesOf(avepCfg))
		}
		for i, threshold := range b.opts.Thresholds {
			i, threshold := i, threshold
			b.s.GoW(func(w int) error { return b.inipUnit(i, threshold, w) })
		}
		for pi, period := range b.opts.SamplePeriods {
			pi, period := pi, period
			b.s.GoW(func(w int) error { return b.samplePeriodUnit(pi, period, w) })
		}
	} else {
		// Deduplicate the ladder (see distinctRungs): one follower per
		// distinct threshold, shared results fanned out to every
		// collapsed rung.
		distinct, rungs := b.distinctRungs()
		cfgs := make([]dbt.Config, 0, len(distinct)+1)
		cfgs = append(cfgs, avepCfg)
		for _, threshold := range distinct {
			cfgs = append(cfgs, b.dbtConfig("ref", threshold, true))
		}
		// Sampled ladders ride the same reference trace as additional
		// followers — the guest still executes exactly once — and each
		// period has its own cache entry, so the sweep warms
		// incrementally and the main reference bundle's entry stays
		// byte-identical to a run without sampling.
		periods := b.opts.SamplePeriods
		spCfgs := make([][]dbt.Config, len(periods))
		spKeys := make([]resultcache.Key, len(periods))
		spCached := make([]spEntry, len(periods))
		spHits := make([]bool, len(periods))
		allSpHit := true
		for pi, period := range periods {
			spCfgs[pi] = b.sampleConfigs(period, distinct)
			if useCache {
				spKeys[pi] = b.spCacheKey(b.refImgHash, period, spCfgs[pi])
				spHits[pi] = b.cacheLookup(spKeys[pi], &spCached[pi], worker) && spEntryMatches(&spCached[pi], period, spCfgs[pi])
			}
			if !spHits[pi] {
				allSpHit = false
			}
		}
		var key resultcache.Key
		var cached refEntry
		hit := false
		if useCache {
			key = b.refCacheKey(b.refImgHash, cfgs)
			hit = b.cacheLookup(key, &cached, worker) && refEntryMatches(&cached, cfgs)
		}
		if hit && (len(preds) == 0 || bpHit) && lsWarm && allSpHit && !b.opts.CacheVerify {
			// Warm path: replay the whole reference bundle without
			// executing a single guest block. addRunStats is deliberately
			// not called — a fully cached benchmark reports zero blocks.
			if len(preds) > 0 {
				b.out.Predictors = bpCached.Results
			}
			if b.opts.Learned != nil {
				data := lsCached.Data
				b.out.Learned = &data
			}
			b.recordAVEP(cached.AVEP, cached.AVEPCycles)
			for j := range rungs {
				idxs, ro := rungs[j], cached.Runs[j]
				b.s.GoW(func(w int) error { return b.compareUnit(idxs, ro, w) })
			}
			for pi := range periods {
				pi, outs := pi, spCached[pi].Runs
				b.s.GoW(func(w int) error { return b.sampleCompareUnit(pi, rungs, outs, w) })
			}
		} else {
			suite, observers, err := newPredictSuite(preds)
			if err != nil {
				return err
			}
			col, lobs, err := b.newLearnedCollector(img, worker)
			if err != nil {
				return err
			}
			observers = append(observers, lobs...)
			runCfgs := cfgs
			for _, sc := range spCfgs {
				runCfgs = append(runCfgs, sc...)
			}
			start = time.Now()
			snaps, stats, err := dbt.RunMultiObserved(img, tape, runCfgs, observers)
			if err != nil {
				err = fmt.Errorf("core: reference runs of %s: %w", b.t.Name, err)
				b.record(obs.UnitRef, 0, worker, start, 0, err)
				return err
			}
			for _, st := range stats {
				b.addRunStats(st)
			}
			b.recordRun(obs.UnitRef, 0, worker, start, stats...)
			outs := make([]runOutput, len(rungs))
			for j := range rungs {
				cfg := cfgs[j+1]
				outs[j] = runOutput{T: cfg.Threshold, Snapshot: snaps[j+1], Stats: *stats[j+1], Cycles: cyclesOf(cfg)}
			}
			if useCache {
				computed := refEntry{AVEP: snaps[0], AVEPStats: *stats[0], AVEPCycles: cyclesOf(avepCfg), Runs: outs}
				if err := b.cacheSettle(key, hit, computed, cached, worker); err != nil {
					return err
				}
			}
			if err := b.settlePredictors(suite, useCache, bpHit, bpKey, bpCached, worker); err != nil {
				return err
			}
			if err := b.settleLearned(col, useCache, lsHit, lsKey, lsCached, worker); err != nil {
				return err
			}
			b.recordAVEP(snaps[0], cyclesOf(avepCfg))
			for j := range rungs {
				idxs, ro := rungs[j], outs[j]
				b.s.GoW(func(w int) error { return b.compareUnit(idxs, ro, w) })
			}
			base := 1 + len(rungs)
			for pi, period := range periods {
				spOuts := make([]runOutput, len(rungs))
				for j := range rungs {
					k := base + pi*len(rungs) + j
					cfg := runCfgs[k]
					spOuts[j] = runOutput{T: cfg.Threshold, Snapshot: snaps[k], Stats: *stats[k], Cycles: cyclesOf(cfg)}
					b.addSampleStats(snaps[k])
				}
				if useCache {
					if err := b.cacheSettle(spKeys[pi], spHits[pi], spEntry{Period: period, Runs: spOuts}, spCached[pi], worker); err != nil {
						return err
					}
				}
				pi, spOuts := pi, spOuts
				b.s.GoW(func(w int) error { return b.sampleCompareUnit(pi, rungs, spOuts, w) })
			}
		}
	}
	b.maybeCompareTrain(worker)
	b.finishItem()
	return nil
}

// recordAVEP fills the once-per-benchmark memo the comparison stages
// read. The write happens before any comparison unit is spawned, which
// is what makes the lock-free reads in compareUnit safe.
func (b *benchRun) recordAVEP(avep *profile.Snapshot, cycles float64) {
	b.out.AVEP = avep
	b.out.AVEPCycles = cycles
	b.mu.Lock()
	b.avep = avep
	b.mu.Unlock()
}

// inipUnit runs one independent INIP(T) execution and compares it
// inline. Its failure retires exactly its own ladder item.
func (b *benchRun) inipUnit(i int, threshold uint64, worker int) error {
	_, err := b.execute(obs.UnitRef, threshold, worker, b.finishItem, func() error {
		return b.inipBody(i, threshold, worker)
	})
	return err
}

func (b *benchRun) inipBody(i int, threshold uint64, worker int) error {
	start := time.Now()
	img, tape, err := b.build.get("ref")
	b.record(obs.UnitBuild, threshold, worker, start, 0, err)
	if err != nil {
		return err
	}
	cfg := b.dbtConfig("ref", threshold, true)
	useCache := b.cacheUsable()
	var key resultcache.Key
	var cached runOutput
	hit := false
	if useCache {
		key = b.runCacheKey(b.refImgHash, "ref", cfg)
		hit = b.cacheLookup(key, &cached, worker) && cached.Snapshot != nil
		if hit && !b.opts.CacheVerify {
			return b.compareBody([]int{i}, cached, worker)
		}
	}
	start = time.Now()
	snap, stats, err := dbt.Run(img, tape, cfg)
	if err != nil {
		err = fmt.Errorf("core: INIP(%d) run of %s: %w", threshold, b.t.Name, err)
		b.record(obs.UnitRef, threshold, worker, start, 0, err)
		return err
	}
	b.addRunStats(stats)
	b.recordRun(obs.UnitRef, threshold, worker, start, stats)
	computed := runOutput{T: cfg.Threshold, Snapshot: snap, Stats: *stats, Cycles: cyclesOf(cfg)}
	if useCache {
		if err := b.cacheSettle(key, hit, computed, cached, worker); err != nil {
			return err
		}
	}
	return b.compareBody([]int{i}, computed, worker)
}

// compareUnit is the scheduled comparison unit of shared-trace mode.
// Its failure retires every ladder item it serves.
func (b *benchRun) compareUnit(idxs []int, ro runOutput, worker int) error {
	_, err := b.execute(obs.UnitCompare, ro.T, worker, func() {
		for range idxs {
			b.finishItem()
		}
	}, func() error {
		return b.compareBody(idxs, ro, worker)
	})
	return err
}

// compareBody evaluates one INIP(T) snapshot against the AVEP memo and
// writes every ladder entry it serves — one in independent mode,
// several when collapsed rungs share a follower (indexes are
// rung-owned, no lock needed). The comparison runs once; collapsed
// rungs receive identical results under their own paper-unit labels.
//
// The comparison itself is cacheable: its inputs are fully determined
// by the two runs' keys, so a warm hit skips the normalization — unless
// the caller wants the normalized rows (KeepNormalized), which the
// cache does not carry.
func (b *benchRun) compareBody(idxs []int, ro runOutput, worker int) error {
	useCache := b.cacheUsable() && !b.opts.KeepNormalized
	var key resultcache.Key
	var cached cmpEntry
	hit := false
	if useCache {
		key = b.cmpCacheKey(ro.T)
		hit = b.cacheLookup(key, &cached, worker)
		if hit && !b.opts.CacheVerify {
			b.publishThresholdResults(idxs, ro, cached.Summary, nil)
			return nil
		}
	}
	start := time.Now()
	summary, norm, err := Compare(ro.Snapshot, b.out.AVEP)
	if err != nil {
		err = fmt.Errorf("core: INIP(%d) comparison of %s: %w", ro.T, b.t.Name, err)
		b.record(obs.UnitCompare, ro.T, worker, start, 0, err)
		return err
	}
	b.record(obs.UnitCompare, ro.T, worker, start, 0, nil)
	if useCache {
		if err := b.cacheSettle(key, hit, cmpEntry{Summary: summary}, cached, worker); err != nil {
			return err
		}
	}
	b.publishThresholdResults(idxs, ro, summary, norm)
	return nil
}

// publishThresholdResults writes one ladder entry per served rung index
// and retires the matching work items (indexes are rung-owned, so the
// writes need no lock).
func (b *benchRun) publishThresholdResults(idxs []int, ro runOutput, summary metrics.Summary, norm *navep.Result) {
	for _, i := range idxs {
		tr := ThresholdResult{
			T:            b.opts.Thresholds[i],
			Summary:      summary,
			ProfilingOps: ro.Snapshot.ProfilingOps,
			Cycles:       ro.Cycles,
			Stats:        ro.Stats,
		}
		if b.opts.KeepNormalized {
			tr.Normalized = norm
		}
		if b.opts.KeepSnapshots {
			tr.Snapshot = ro.Snapshot
		}
		b.out.Results[i] = tr
		b.finishItem()
	}
}

// samplePeriodUnit reruns the distinct-threshold ladder at one sampled
// profiling period in independent mode and compares it inline. Its
// failure retires exactly its own work item.
func (b *benchRun) samplePeriodUnit(pi int, period uint64, worker int) error {
	_, err := b.execute(obs.UnitSample, period, worker, b.finishItem, func() error {
		return b.samplePeriodBody(pi, period, worker)
	})
	return err
}

func (b *benchRun) samplePeriodBody(pi int, period uint64, worker int) error {
	start := time.Now()
	img, tape, err := b.build.get("ref")
	b.record(obs.UnitBuild, period, worker, start, 0, err)
	if err != nil {
		return err
	}
	distinct, rungs := b.distinctRungs()
	cfgs := b.sampleConfigs(period, distinct)
	useCache := b.cacheUsable()
	var key resultcache.Key
	var cached spEntry
	hit := false
	if useCache {
		key = b.spCacheKey(b.refImgHash, period, cfgs)
		hit = b.cacheLookup(key, &cached, worker) && spEntryMatches(&cached, period, cfgs)
		if hit && !b.opts.CacheVerify {
			return b.sampleCompareBody(pi, period, rungs, cached.Runs, worker)
		}
	}
	// RunMulti's driver (cfgs[0]) executes the guest, the remaining
	// rungs replay its trace — one execution per period, same results as
	// one run per rung. The cache entry is keyed identically to the
	// shared-trace follower bundle, so the modes warm each other.
	start = time.Now()
	snaps, stats, err := dbt.RunMulti(img, tape, cfgs)
	if err != nil {
		err = fmt.Errorf("core: sampled ladder (period %d) of %s: %w", period, b.t.Name, err)
		b.record(obs.UnitSample, period, worker, start, 0, err)
		return err
	}
	outs := make([]runOutput, len(cfgs))
	for j, cfg := range cfgs {
		b.addRunStats(stats[j])
		b.addSampleStats(snaps[j])
		outs[j] = runOutput{T: cfg.Threshold, Snapshot: snaps[j], Stats: *stats[j], Cycles: cyclesOf(cfg)}
	}
	b.recordRun(obs.UnitSample, period, worker, start, stats...)
	if useCache {
		if err := b.cacheSettle(key, hit, spEntry{Period: period, Runs: outs}, cached, worker); err != nil {
			return err
		}
	}
	return b.sampleCompareBody(pi, period, rungs, outs, worker)
}

// sampleCompareUnit is the scheduled sampled-ladder comparison of
// shared-trace mode. Its failure retires exactly its period's item.
func (b *benchRun) sampleCompareUnit(pi int, rungs [][]int, outs []runOutput, worker int) error {
	period := b.opts.SamplePeriods[pi]
	_, err := b.execute(obs.UnitSampleCompare, period, worker, b.finishItem, func() error {
		return b.sampleCompareBody(pi, period, rungs, outs, worker)
	})
	return err
}

// sampleCompareBody evaluates one period's sampled ladder against the
// AVEP memo and publishes the period's result (the index is
// period-owned, so the write needs no lock). Only the runs are cached —
// the comparisons are recomputed even on a warm rerun, which still
// executes zero guest blocks and pays only the cheap normalizations.
func (b *benchRun) sampleCompareBody(pi int, period uint64, rungs [][]int, outs []runOutput, worker int) error {
	start := time.Now()
	perT := make([]SampleThresholdResult, len(b.opts.Thresholds))
	for j, ro := range outs {
		summary, _, err := Compare(ro.Snapshot, b.out.AVEP)
		if err != nil {
			err = fmt.Errorf("core: sampled INIP(%d) comparison (period %d) of %s: %w", ro.T, period, b.t.Name, err)
			b.record(obs.UnitSampleCompare, period, worker, start, 0, err)
			return err
		}
		for _, i := range rungs[j] {
			perT[i] = SampleThresholdResult{
				T:            b.opts.Thresholds[i],
				Summary:      summary,
				ProfilingOps: ro.Snapshot.ProfilingOps,
				Cycles:       ro.Cycles,
			}
		}
	}
	b.record(obs.UnitSampleCompare, period, worker, start, 0, nil)
	b.out.Sampling[pi] = SamplePeriodResult{Period: period, PerT: perT}
	b.finishItem()
	return nil
}

// trainUnit runs INIP(train) and stores its snapshot for the training
// comparison.
func (b *benchRun) trainUnit(worker int) error {
	_, err := b.execute(obs.UnitTrain, 0, worker, b.cancelTrain, func() error {
		return b.trainBody(worker)
	})
	return err
}

func (b *benchRun) trainBody(worker int) error {
	start := time.Now()
	img, tape, err := b.build.get("train")
	b.record(obs.UnitBuild, 0, worker, start, 0, err)
	if err != nil {
		return err
	}
	cfg := b.dbtConfig("train", 0, false)
	useCache := b.cacheUsable()
	var key resultcache.Key
	var cached runOutput
	hit := false
	if useCache {
		b.trainImgHash = img.ContentHash()
		key = b.runCacheKey(b.trainImgHash, "train", cfg)
		hit = b.cacheLookup(key, &cached, worker) && cached.Snapshot != nil
	}
	var train *profile.Snapshot
	if hit && !b.opts.CacheVerify {
		train = cached.Snapshot
	} else {
		start = time.Now()
		var stats *dbt.RunStats
		train, stats, err = dbt.Run(img, tape, cfg)
		if err != nil {
			err = fmt.Errorf("core: train run of %s: %w", b.t.Name, err)
			b.record(obs.UnitTrain, 0, worker, start, 0, err)
			return err
		}
		b.addRunStats(stats)
		b.recordRun(obs.UnitTrain, 0, worker, start, stats)
		if useCache {
			computed := runOutput{Snapshot: train, Stats: *stats, Cycles: cyclesOf(cfg)}
			if err := b.cacheSettle(key, hit, computed, cached, worker); err != nil {
				return err
			}
		}
	}
	b.out.TrainOps = train.ProfilingOps
	b.mu.Lock()
	b.train = train
	b.mu.Unlock()
	b.maybeCompareTrain(worker)
	b.finishItem()
	return nil
}

// maybeCompareTrain runs the training comparison in whichever run unit
// finishes second — at that point it already holds a pool slot, so the
// work runs inline instead of being queued. It settles its own work
// item: retired on success or absorbed failure, left outstanding on a
// propagated failure (the pool is collapsing and onDone must not
// fire).
func (b *benchRun) maybeCompareTrain(worker int) {
	b.mu.Lock()
	ready := b.avep != nil && b.train != nil && !b.trainCompared
	if ready {
		b.trainCompared = true
	}
	train := b.train
	b.mu.Unlock()
	if !ready {
		return
	}
	_, err := b.execute(obs.UnitTrainCompare, 0, worker, func() {}, func() error {
		return b.compareTrain(train, worker)
	})
	if err != nil {
		b.s.fail(err)
		return
	}
	b.finishItem()
}

// trainRegionThreshold is the reference threshold for offline region
// formation over the training profile: the paper's proposed extension
// for obtaining Sd.CP(train) and Sd.LP(train). It participates in the
// training comparison's cache key.
const trainRegionThreshold = 2000

func (b *benchRun) compareTrain(train *profile.Snapshot, worker int) error {
	useCache := b.cacheUsable()
	var key resultcache.Key
	var cached trainCmpEntry
	hit := false
	if useCache {
		key = b.trainCmpCacheKey()
		hit = b.cacheLookup(key, &cached, worker)
		if hit && !b.opts.CacheVerify {
			b.out.Train = cached.Train
			b.out.TrainRegions = cached.TrainRegions
			return nil
		}
	}
	start := time.Now()
	var err error
	if b.out.Train, _, err = Compare(train, b.out.AVEP); err != nil {
		err = fmt.Errorf("core: train comparison of %s: %w", b.t.Name, err)
		b.record(obs.UnitTrainCompare, 0, worker, start, 0, err)
		return err
	}
	trainWithRegions := region.WithOfflineRegions(train, trainRegionThreshold, region.Config{})
	if b.out.TrainRegions, _, err = Compare(trainWithRegions, b.out.AVEP); err != nil {
		err = fmt.Errorf("core: train region comparison of %s: %w", b.t.Name, err)
		b.record(obs.UnitTrainCompare, 0, worker, start, 0, err)
		return err
	}
	b.record(obs.UnitTrainCompare, 0, worker, start, 0, nil)
	if useCache {
		return b.cacheSettle(key, hit, trainCmpEntry{Train: b.out.Train, TrainRegions: b.out.TrainRegions}, cached, worker)
	}
	return nil
}

// RunBenchmark executes the full three-way study for one target: AVEP
// and INIP(train) once, then INIP(T) for every threshold in the ladder.
// It is a self-contained wrapper around ScheduleBenchmark with a private
// scheduler; studies share one scheduler across benchmarks instead.
func RunBenchmark(t Target, opts Options) (*BenchmarkResult, error) {
	s := NewScheduler(opts.Workers)
	var out *BenchmarkResult
	ScheduleBenchmark(s, t, opts, func(r *BenchmarkResult) { out = r })
	if err := s.Wait(); err != nil {
		return nil, err
	}
	return out, nil
}

// CollectLearnedData runs the learned-predictor collection pass for one
// target outside the full study pipeline: extract the static branch
// sites, execute the reference input once under a plain (unoptimized,
// threshold-free) config, and tally outcomes. It shares the study
// pipeline's `ls` cache entries — same key, same payload — so a daemon
// assembling a training corpus and a study sweeping the same scale warm
// each other, and a warm call executes zero guest blocks. Only Cache,
// CacheContext, CacheVerify, Trace and Faults are honored from opts.
func CollectLearnedData(t Target, lcfg learned.Config, opts Options) (*learned.BenchData, error) {
	if err := lcfg.Validate(); err != nil {
		return nil, err
	}
	opts.Learned = &lcfg
	b := &benchRun{t: t, opts: opts, out: &BenchmarkResult{Name: t.Name}, build: newBuildCache(t, opts.Faults)}
	const worker = 0
	start := time.Now()
	img, tape, err := b.build.get("ref")
	b.record(obs.UnitBuild, 0, worker, start, 0, err)
	if err != nil {
		return nil, err
	}
	useCache := b.cacheUsable()
	var lsKey resultcache.Key
	var lsCached lsEntry
	lsHit := false
	if useCache {
		b.refImgHash = img.ContentHash()
		lsKey = b.lsCacheKey(b.refImgHash)
		lsHit = b.cacheLookup(lsKey, &lsCached, worker) &&
			lsEntryMatches(&lsCached, lcfg.Fingerprint(), t.Name)
		if lsHit && !opts.CacheVerify {
			data := lsCached.Data
			return &data, nil
		}
	}
	col, observers, err := b.newLearnedCollector(img, worker)
	if err != nil {
		return nil, err
	}
	// No scheduler here, so build the config at the Options level (no
	// cancellation channel to attach); the fault trap still arms so
	// perturbed runs stay out of the cache like everywhere else.
	cfg := b.opts.dbtConfig("ref", 0, false)
	if n, ok := b.opts.Faults.Trap(t.Name, "ref"); ok {
		cfg.TrapAfter = n
	}
	start = time.Now()
	_, stats, err := dbt.RunMultiObserved(img, tape, []dbt.Config{cfg}, observers)
	if err != nil {
		err = fmt.Errorf("core: learned collection run of %s: %w", t.Name, err)
		b.record(obs.UnitRef, 0, worker, start, 0, err)
		return nil, err
	}
	b.addRunStats(stats[0])
	b.recordRun(obs.UnitRef, 0, worker, start, stats...)
	if err := b.settleLearned(col, useCache, lsHit, lsKey, lsCached, worker); err != nil {
		return nil, err
	}
	return b.out.Learned, nil
}

// BuildFromAsm is a convenience Target builder for fixed assembler
// programs whose behaviour differs between inputs only through the tape
// seed.
func BuildFromAsm(name, src string) Target {
	return Target{
		Name: name,
		Build: func(input string) (*guest.Image, interp.Tape, error) {
			img, err := guest.Assemble(src)
			if err != nil {
				return nil, nil, err
			}
			img.Name = name
			return img, interp.NewUniformTape(name + "/" + input), nil
		},
		NewTape: func(input string) (interp.Tape, error) {
			return interp.NewUniformTape(name + "/" + input), nil
		},
		TapeID: func(input string) string {
			return "uniform:" + name + "/" + input
		},
	}
}
