// Package core ties the translator, the normalizer and the metrics into
// the paper's experiment pipeline: run a benchmark three ways — INIP(T)
// with a retranslation threshold, AVEP with optimization disabled, and
// INIP(train) on the training input — normalize the average profile to
// each initial profile's CFG, and compute the accuracy measures
// (Sd.BP/CP/LP and the range-based mismatch rates) that the paper's
// Figures 8-18 report.
package core

import (
	"fmt"

	"repro/internal/dbt"
	"repro/internal/guest"
	"repro/internal/interp"
	"repro/internal/metrics"
	"repro/internal/navep"
	"repro/internal/perfmodel"
	"repro/internal/profile"
	"repro/internal/region"
)

// Target is a program under study: a builder that produces the guest
// image and input tape for a named input ("ref" or "train"). Builders
// may bake input-dependent parameters into the image's data segment —
// the code layout must not depend on the input, so that block addresses
// line up across profiles (as they do for real binaries).
type Target struct {
	Name  string
	Build func(input string) (*guest.Image, interp.Tape, error)
}

// Compare evaluates an initial profile against an average profile and
// returns the paper's summary measures together with the normalized
// view. The avep snapshot must come from an unoptimized run.
func Compare(inip, avep *profile.Snapshot) (metrics.Summary, *navep.Result, error) {
	res, err := navep.Normalize(inip, avep)
	if err != nil {
		return metrics.Summary{}, nil, err
	}
	bp := make([]metrics.Item, 0, len(res.Blocks))
	for _, b := range res.Blocks {
		bp = append(bp, metrics.Item{Pred: b.BT, Avg: b.BM, W: b.W})
	}
	cp := make([]metrics.Item, 0, len(res.Traces))
	for _, r := range res.Traces {
		cp = append(cp, metrics.Item{Pred: r.CT, Avg: r.CM, W: r.W})
	}
	lp := make([]metrics.Item, 0, len(res.Loops))
	for _, r := range res.Loops {
		lp = append(lp, metrics.Item{Pred: r.LT, Avg: r.LM, W: r.W})
	}
	s := metrics.Summary{
		SdBP:       metrics.WeightedSD(bp),
		BPMismatch: metrics.MismatchRate(bp, metrics.BPBucket),
		HasRegions: len(inip.Regions) > 0,
		SdCP:       metrics.WeightedSD(cp),
		SdLP:       metrics.WeightedSD(lp),
		LPMismatch: metrics.MismatchRate(lp, metrics.LPBucket),
		Blocks:     len(bp),
		Traces:     len(cp),
		Loops:      len(lp),
	}
	return s, res, nil
}

// Options configures a benchmark study run.
type Options struct {
	// Thresholds is the ladder of retranslation thresholds to sweep.
	Thresholds []uint64
	// PoolTrigger passes through to the translator (default 8).
	PoolTrigger int
	// Perf enables the cycle model on every run; PerfParams overrides
	// its coefficients (zero value = defaults).
	Perf       bool
	PerfParams perfmodel.Params
	// MaxBlockExecs is the per-run safety budget (0 = none).
	MaxBlockExecs uint64
	// DisableFreeze and RegisterTwice pass through to the translator;
	// RegisterTwice defaults to on.
	DisableFreeze   bool
	NoRegisterTwice bool
	// KeepSnapshots retains the per-threshold INIP snapshots in the
	// result (memory-heavy; used by the offline tools).
	KeepSnapshots bool
}

// ThresholdResult is the outcome of one INIP(T) run compared to AVEP.
type ThresholdResult struct {
	T            uint64
	Summary      metrics.Summary
	Normalized   *navep.Result
	ProfilingOps uint64
	Cycles       float64
	Stats        dbt.RunStats
	Snapshot     *profile.Snapshot // nil unless Options.KeepSnapshots
}

// BenchmarkResult is the complete study output for one benchmark.
type BenchmarkResult struct {
	Name string
	// AVEP is the average profile of the reference input.
	AVEP *profile.Snapshot
	// AVEPCycles is the cycle cost of running unoptimized forever.
	AVEPCycles float64
	// Train compares INIP(train) to AVEP (blocks only, as in the
	// paper: unoptimized runs carry no regions).
	Train metrics.Summary
	// TrainRegions compares INIP(train) to AVEP after forming regions
	// offline over the training profile (the paper's section-5 future
	// work, which makes Sd.CP(train) and Sd.LP(train) computable).
	// Regions are formed at the reference threshold of 2000.
	TrainRegions metrics.Summary
	// TrainOps is the profiling-operation total of the training run,
	// the normalization base of Figure 18.
	TrainOps uint64
	// Results holds one entry per threshold, in ladder order.
	Results []ThresholdResult
}

func (o *Options) dbtConfig(input string, threshold uint64, optimize bool) dbt.Config {
	cfg := dbt.Config{
		Input:         input,
		Threshold:     threshold,
		Optimize:      optimize,
		PoolTrigger:   o.PoolTrigger,
		RegisterTwice: !o.NoRegisterTwice,
		DisableFreeze: o.DisableFreeze,
		MaxBlockExecs: o.MaxBlockExecs,
	}
	if o.Perf {
		params := o.PerfParams
		if params == (perfmodel.Params{}) {
			params = perfmodel.DefaultParams()
		}
		cfg.Perf = perfmodel.NewAccumulator(params)
	}
	return cfg
}

// RunBenchmark executes the full three-way study for one target: AVEP
// and INIP(train) once, then INIP(T) for every threshold in the ladder.
func RunBenchmark(t Target, opts Options) (*BenchmarkResult, error) {
	if t.Build == nil {
		return nil, fmt.Errorf("core: target %q has no builder", t.Name)
	}
	out := &BenchmarkResult{Name: t.Name}

	// AVEP: reference input, optimization off.
	img, tape, err := t.Build("ref")
	if err != nil {
		return nil, fmt.Errorf("core: build %s/ref: %w", t.Name, err)
	}
	cfg := opts.dbtConfig("ref", 0, false)
	avep, _, err := dbt.Run(img, tape, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: AVEP run of %s: %w", t.Name, err)
	}
	out.AVEP = avep
	if cfg.Perf != nil {
		out.AVEPCycles = cfg.Perf.Cycles
	}

	// INIP(train): training input, optimization off.
	img, tape, err = t.Build("train")
	if err != nil {
		return nil, fmt.Errorf("core: build %s/train: %w", t.Name, err)
	}
	train, _, err := dbt.Run(img, tape, opts.dbtConfig("train", 0, false))
	if err != nil {
		return nil, fmt.Errorf("core: train run of %s: %w", t.Name, err)
	}
	out.TrainOps = train.ProfilingOps
	if out.Train, _, err = Compare(train, avep); err != nil {
		return nil, fmt.Errorf("core: train comparison of %s: %w", t.Name, err)
	}
	// Offline region formation over the training profile: the paper's
	// proposed extension for obtaining Sd.CP(train) and Sd.LP(train).
	const trainRegionThreshold = 2000
	trainWithRegions := region.WithOfflineRegions(train, trainRegionThreshold, region.Config{})
	if out.TrainRegions, _, err = Compare(trainWithRegions, avep); err != nil {
		return nil, fmt.Errorf("core: train region comparison of %s: %w", t.Name, err)
	}

	// INIP(T) ladder.
	for _, threshold := range opts.Thresholds {
		img, tape, err = t.Build("ref")
		if err != nil {
			return nil, fmt.Errorf("core: build %s/ref: %w", t.Name, err)
		}
		cfg := opts.dbtConfig("ref", threshold, true)
		snap, stats, err := dbt.Run(img, tape, cfg)
		if err != nil {
			return nil, fmt.Errorf("core: INIP(%d) run of %s: %w", threshold, t.Name, err)
		}
		summary, norm, err := Compare(snap, avep)
		if err != nil {
			return nil, fmt.Errorf("core: INIP(%d) comparison of %s: %w", threshold, t.Name, err)
		}
		tr := ThresholdResult{
			T:            threshold,
			Summary:      summary,
			Normalized:   norm,
			ProfilingOps: snap.ProfilingOps,
			Stats:        *stats,
		}
		if cfg.Perf != nil {
			tr.Cycles = cfg.Perf.Cycles
		}
		if opts.KeepSnapshots {
			tr.Snapshot = snap
		}
		out.Results = append(out.Results, tr)
	}
	return out, nil
}

// BuildFromAsm is a convenience Target builder for fixed assembler
// programs whose behaviour differs between inputs only through the tape
// seed.
func BuildFromAsm(name, src string) Target {
	return Target{
		Name: name,
		Build: func(input string) (*guest.Image, interp.Tape, error) {
			img, err := guest.Assemble(src)
			if err != nil {
				return nil, nil, err
			}
			img.Name = name
			return img, interp.NewUniformTape(name + "/" + input), nil
		},
	}
}
