package core

import (
	"strings"
	"testing"

	"repro/internal/navep"
)

func TestCharacterizeSplitsCauses(t *testing.T) {
	norm := &navep.Result{
		Blocks: []navep.BlockItem{
			// Matching bucket: ignored.
			{Addr: 1, CopyID: -1, BT: 0.9, BM: 0.95, W: 100},
			// Mismatch far beyond noise at T=1000: systematic.
			{Addr: 2, CopyID: -1, BT: 0.95, BM: 0.20, W: 500},
			// Mismatch across the .7 boundary, within 3 sigma at a tiny
			// window: sampling. sigma(BM=.69, T=25) ~ 0.0925, |d|=0.05.
			{Addr: 3, CopyID: -1, BT: 0.74, BM: 0.69, W: 50},
		},
	}
	// At T=25 the small deviation is explicable by noise.
	c := Characterize(norm, 25)
	if len(c.Mispredicts) != 2 {
		t.Fatalf("mispredicts = %d, want 2", len(c.Mispredicts))
	}
	if c.Mispredicts[0].Addr != 2 || c.Mispredicts[0].Kind != MispredictSystematic {
		t.Fatalf("heaviest mispredict wrong: %+v", c.Mispredicts[0])
	}
	if c.Mispredicts[1].Addr != 3 || c.Mispredicts[1].Kind != MispredictSampling {
		t.Fatalf("small mispredict wrong: %+v", c.Mispredicts[1])
	}
	if c.SystematicWeight != 500 || c.SamplingWeight != 50 {
		t.Fatalf("weights: sys=%v sam=%v", c.SystematicWeight, c.SamplingWeight)
	}
	if c.TotalWeight != 650 {
		t.Fatalf("total weight %v", c.TotalWeight)
	}

	// At T=100000 the same small deviation is far beyond noise.
	c2 := Characterize(norm, 100000)
	for _, m := range c2.Mispredicts {
		if m.Kind != MispredictSystematic {
			t.Fatalf("at a huge window all mismatches are systematic: %+v", m)
		}
	}
}

func TestCharacterizeEndToEndPhasedVsStationary(t *testing.T) {
	// The phased program's mispredicted branch must classify as
	// systematic; the stationary program should have (nearly) no
	// systematic mispredictions.
	phased := BuildFromAsm("phased", phasedSrc(60000, 15000, 7782, 819))
	res, err := RunBenchmark(phased, Options{Thresholds: []uint64{500}, KeepNormalized: true})
	if err != nil {
		t.Fatal(err)
	}
	c := Characterize(res.Results[0].Normalized, 500)
	if c.SystematicWeight == 0 {
		t.Fatal("phased program shows no systematic mispredictions")
	}
	if c.SystematicWeight < c.SamplingWeight {
		t.Fatalf("phase flip should dominate: sys=%v sam=%v", c.SystematicWeight, c.SamplingWeight)
	}

	stationary := BuildFromAsm("stationary", stationarySrc(60000, 6144))
	res2, err := RunBenchmark(stationary, Options{Thresholds: []uint64{500}, KeepNormalized: true})
	if err != nil {
		t.Fatal(err)
	}
	c2 := Characterize(res2.Results[0].Normalized, 500)
	if c2.SystematicWeight > c2.TotalWeight*0.02 {
		t.Fatalf("stationary program shows %.1f%% systematic weight", 100*c2.SystematicWeight/c2.TotalWeight)
	}
}

func TestCharacterizeRender(t *testing.T) {
	norm := &navep.Result{
		Blocks: []navep.BlockItem{
			{Addr: 2, CopyID: -1, BT: 0.95, BM: 0.20, W: 500},
		},
	}
	text := Characterize(norm, 1000).Render(10)
	for _, want := range []string{"systematic", "block", "z="} {
		if !strings.Contains(text, want) {
			t.Fatalf("render missing %q:\n%s", want, text)
		}
	}
	// Row capping.
	many := &navep.Result{}
	for i := 0; i < 20; i++ {
		many.Blocks = append(many.Blocks, navep.BlockItem{Addr: i, BT: 0.95, BM: 0.2, W: float64(i + 1)})
	}
	capped := Characterize(many, 1000).Render(5)
	if !strings.Contains(capped, "... 15 more") {
		t.Fatalf("row cap missing:\n%s", capped)
	}
}

func TestMispredictKindString(t *testing.T) {
	if MispredictSampling.String() != "sampling" || MispredictSystematic.String() != "systematic" {
		t.Fatal("kind strings wrong")
	}
}
