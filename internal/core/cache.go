package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/dbt"
	"repro/internal/learned"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/predict"
	"repro/internal/profile"
	"repro/internal/resultcache"
)

// This file threads the result cache (internal/resultcache) through the
// unit pipeline. The contract with the scheduler in core.go:
//
//   - lookup happens before a unit's expensive body runs; a validated
//     hit replays the unit's outputs without executing any guest block
//     (addRunStats is never called on a warm path, so the study's
//     BlocksExecuted stays at zero for fully cached benchmarks);
//   - store happens only on the unit's clean completion path. Failed,
//     interrupted or faulted runs never reach a Put, so the cache can
//     only ever hold results the uncached pipeline would have reported;
//   - in verify mode (Options.CacheVerify) a hit does not short-circuit:
//     the unit executes anyway and a divergence between the computed and
//     cached values is a hard unit error — the differential self-check
//     of both the cache and the engine's determinism.
//
// What is never cached: benchmarks with an armed fault plan (their runs
// are deliberately perturbed), targets without a TapeID (the input
// identity is not declarative, so the key closure is incomplete), and
// interrupted or failed units (no clean completion, no store).

// runOutput is the cached outcome of one profiled execution: the unit of
// reuse for training runs and independent INIP(T)/AVEP runs, and the
// per-follower element of a shared-trace reference bundle.
type runOutput struct {
	// T is the effective retranslation threshold (0 for AVEP/train).
	T uint64 `json:"t"`
	// Snapshot is the run's profile snapshot.
	Snapshot *profile.Snapshot `json:"snapshot"`
	// Stats are the engine counters of this run's profiling context.
	Stats dbt.RunStats `json:"stats"`
	// Cycles is the perf-model total (0 when the model is off).
	Cycles float64 `json:"cycles"`
}

// refEntry is the cached output of a shared-trace reference unit: the
// AVEP profile plus one runOutput per distinct effective threshold, in
// ladder (config) order.
type refEntry struct {
	AVEP       *profile.Snapshot `json:"avep"`
	AVEPStats  dbt.RunStats      `json:"avep_stats"`
	AVEPCycles float64           `json:"avep_cycles"`
	Runs       []runOutput       `json:"runs"`
}

// cmpEntry is the cached output of one INIP(T)-vs-AVEP comparison.
type cmpEntry struct {
	Summary metrics.Summary `json:"summary"`
}

// trainCmpEntry is the cached output of the training comparison pair.
type trainCmpEntry struct {
	Train        metrics.Summary `json:"train"`
	TrainRegions metrics.Summary `json:"train_regions"`
}

// bpEntry is the cached output of the dynamic-predictor observers over
// the reference trace: one tally per requested predictor, in request
// order. The trace is fully determined by image and tape, so the entry
// is threshold-independent and shared across ladder shapes.
type bpEntry struct {
	Results []predict.Result `json:"results"`
}

// lsEntry is the cached output of the learned-predictor collection over
// the reference trace: every static branch site with its feature vector
// and outcome tallies. Like bp it is threshold-independent — the trace
// is fully determined by image and tape — and shared across ladder
// shapes and run modes. The fingerprint pins the feature schema (and,
// via the key's engine component, the model config it will feed).
type lsEntry struct {
	Fingerprint string            `json:"fingerprint"`
	Data        learned.BenchData `json:"data"`
}

// spEntry is the cached output of one sampled-profiling ladder: every
// distinct-threshold run of one sample period over the reference
// input, in ladder (config) order. The comparisons against AVEP are
// not cached — they are cheap and recomputed on warm reruns.
type spEntry struct {
	Period uint64      `json:"period"`
	Runs   []runOutput `json:"runs"`
}

// cacheUsable reports whether this benchmark's units may consult the
// result cache at all. Fault plans perturb runs, and a target without a
// declarative tape identity leaves the key closure incomplete — in both
// cases the pipeline silently runs uncached rather than guessing.
func (b *benchRun) cacheUsable() bool {
	return b.opts.Cache != nil && b.t.TapeID != nil && b.opts.Faults == nil
}

// cacheKey assembles the canonical key for one unit output of this
// benchmark. imgHash and tape identify the guest-side inputs, engine the
// translator configuration(s); kind and t disambiguate the unit flavour.
func (b *benchRun) cacheKey(kind, imgHash, tape, engine string, t uint64) resultcache.Key {
	return resultcache.Key{
		Kind:    kind,
		Bench:   b.t.Name,
		Context: b.opts.CacheContext,
		Image:   imgHash,
		Tape:    tape,
		Engine:  engine,
		T:       t,
	}
}

// cacheLookup consults the store and emits the matching flight-recorder
// event, so traces show where warm runs got their data.
func (b *benchRun) cacheLookup(k resultcache.Key, v any, worker int) bool {
	start := time.Now()
	hit := b.opts.Cache.Lookup(k, v)
	unit := obs.UnitCacheMiss
	if hit {
		unit = obs.UnitCacheHit
	}
	b.opts.Trace.Record(b.t.Name, unit, k.T, worker, start, time.Since(start), 0, nil)
	return hit
}

// cacheStore publishes one clean unit output. A failed write is traced
// and counted by the store but never fails the unit — the computed
// result is correct either way, only its reuse is lost.
func (b *benchRun) cacheStore(k resultcache.Key, v any, worker int) {
	start := time.Now()
	err := b.opts.Cache.Put(k, v)
	b.opts.Trace.Record(b.t.Name, obs.UnitCacheStore, k.T, worker, start, time.Since(start), 0, err)
}

// cacheVerify compares a freshly computed unit output against the
// cached entry for the same key. Both sides are canonicalized through
// json.Marshal (deterministic: struct order, sorted map keys) so a
// value that merely round-tripped through the store compares equal; any
// remaining difference means the cache and the engine disagree about a
// supposedly deterministic result, which is exactly what verify mode
// exists to catch — it is a hard unit error, subject to the failure
// policy like any other.
func (b *benchRun) cacheVerify(k resultcache.Key, computed, cached any) error {
	cj, err := json.Marshal(computed)
	if err != nil {
		return fmt.Errorf("core: cache verify %s of %s: encode computed: %w", k.Kind, b.t.Name, err)
	}
	gj, err := json.Marshal(cached)
	if err != nil {
		return fmt.Errorf("core: cache verify %s of %s: encode cached: %w", k.Kind, b.t.Name, err)
	}
	if !bytes.Equal(cj, gj) {
		return fmt.Errorf("core: cache verify: %s entry of %s (t=%d) diverges from recomputed result (entry %s)",
			k.Kind, b.t.Name, k.T, k.Hash())
	}
	return nil
}

// cacheSettle is the shared tail of every caching unit body: on a miss
// the computed value is stored; on a verify-mode hit the computed value
// is checked against the cached one. (A non-verify hit never reaches
// the computation, so it never reaches here either.)
func (b *benchRun) cacheSettle(k resultcache.Key, hit bool, computed, cached any, worker int) error {
	if hit {
		return b.cacheVerify(k, computed, cached)
	}
	b.cacheStore(k, computed, worker)
	return nil
}

// cyclesOf extracts a run's perf-model total (0 with the model off).
func cyclesOf(cfg dbt.Config) float64 {
	if cfg.Perf != nil {
		return cfg.Perf.Cycles
	}
	return 0
}

// refEntryMatches sanity-checks a decoded reference bundle against the
// follower configs the pipeline is about to serve. The key fingerprint
// already encodes the config set, so a mismatch indicates a damaged or
// hand-edited entry; the caller treats it as a miss.
func refEntryMatches(ent *refEntry, cfgs []dbt.Config) bool {
	if ent.AVEP == nil || len(ent.Runs) != len(cfgs)-1 {
		return false
	}
	for j, ro := range ent.Runs {
		if ro.Snapshot == nil || ro.T != cfgs[j+1].Threshold {
			return false
		}
	}
	return true
}

// refCacheKey keys the shared-trace reference bundle: one entry covers
// the AVEP run and every distinct-threshold follower, so the engine
// component joins all follower fingerprints in config order.
func (b *benchRun) refCacheKey(imgHash string, cfgs []dbt.Config) resultcache.Key {
	engines := make([]byte, 0, 64*len(cfgs))
	for i, cfg := range cfgs {
		if i > 0 {
			engines = append(engines, '|')
		}
		engines = append(engines, cfg.Fingerprint()...)
	}
	return b.cacheKey("ref", imgHash, b.t.TapeID("ref"), string(engines), 0)
}

// bpEntryMatches sanity-checks a decoded predictor entry against the
// requested predictor list; a mismatch is treated as a miss.
func bpEntryMatches(ent *bpEntry, names []string) bool {
	if len(ent.Results) != len(names) {
		return false
	}
	for i, r := range ent.Results {
		if r.Predictor != names[i] {
			return false
		}
	}
	return true
}

// bpCacheKey keys the predictor tallies over the reference trace. The
// engine component is the predictor list — the trace itself does not
// depend on any translator configuration, only on image and tape.
func (b *benchRun) bpCacheKey(imgHash string) resultcache.Key {
	return b.cacheKey("bp", imgHash, b.t.TapeID("ref"),
		"predictors="+strings.Join(b.opts.Predictors, ","), 0)
}

// lsEntryMatches sanity-checks a decoded learned-collection entry; a
// mismatch (wrong fingerprint, wrong benchmark, or a feature width the
// current extractor would not produce) is treated as a miss.
func lsEntryMatches(ent *lsEntry, fingerprint, bench string) bool {
	if ent.Fingerprint != fingerprint || ent.Data.Bench != bench {
		return false
	}
	for i := range ent.Data.Sites {
		if len(ent.Data.Sites[i].X) != learned.NumFeatures() {
			return false
		}
	}
	return true
}

// lsCacheKey keys the learned collection over the reference trace. The
// engine component is the model-config fingerprint, which also carries
// the feature-schema version; the collection itself depends only on
// image and tape, so study runs and the daemon warm each other.
func (b *benchRun) lsCacheKey(imgHash string) resultcache.Key {
	return b.cacheKey("ls", imgHash, b.t.TapeID("ref"), b.opts.Learned.Fingerprint(), 0)
}

// spEntryMatches sanity-checks a decoded sampled-ladder entry against
// the period and configs the pipeline is about to serve; a mismatch is
// treated as a miss.
func spEntryMatches(ent *spEntry, period uint64, cfgs []dbt.Config) bool {
	if ent.Period != period || len(ent.Runs) != len(cfgs) {
		return false
	}
	for j, ro := range ent.Runs {
		if ro.Snapshot == nil || ro.T != cfgs[j].Threshold {
			return false
		}
	}
	return true
}

// spCacheKey keys one sampled-profiling ladder. Each config's
// fingerprint already carries the period and seed (";sample=..."), so
// the joined engine component pins the whole bundle; T carries the
// period to keep entries of one sweep distinguishable in traces. The
// key is identical in shared-trace and independent-runs mode, so the
// modes warm each other.
func (b *benchRun) spCacheKey(imgHash string, period uint64, cfgs []dbt.Config) resultcache.Key {
	engines := make([]byte, 0, 64*len(cfgs))
	for i, cfg := range cfgs {
		if i > 0 {
			engines = append(engines, '|')
		}
		engines = append(engines, cfg.Fingerprint()...)
	}
	return b.cacheKey("sp", imgHash, b.t.TapeID("ref"), string(engines), period)
}

// runCacheKey keys one profiled execution (train, or an independent
// AVEP/INIP(T) run).
func (b *benchRun) runCacheKey(imgHash, input string, cfg dbt.Config) resultcache.Key {
	return b.cacheKey("run", imgHash, b.t.TapeID(input), cfg.Fingerprint(), cfg.Threshold)
}

// cmpCacheKey keys one INIP(T)-vs-AVEP comparison. Both sides' configs
// participate, so the entry is shared between shared-trace and
// independent-runs mode (their results are defined to be identical).
func (b *benchRun) cmpCacheKey(t uint64) resultcache.Key {
	inip := b.dbtConfig("ref", t, true).Fingerprint()
	avep := b.dbtConfig("ref", 0, false).Fingerprint()
	return b.cacheKey("cmp", b.refImgHash, b.t.TapeID("ref"),
		fmt.Sprintf("inip(%s)vs(%s)", inip, avep), t)
}

// trainCmpCacheKey keys the training comparison pair. It spans two
// images and two tapes (ref for AVEP, train for INIP(train)), joined
// component-wise; the offline region formation that produces the
// TrainRegions side is pinned by its threshold.
func (b *benchRun) trainCmpCacheKey() resultcache.Key {
	avep := b.dbtConfig("ref", 0, false).Fingerprint()
	train := b.dbtConfig("train", 0, false).Fingerprint()
	return b.cacheKey("traincmp",
		b.refImgHash+"+"+b.trainImgHash,
		b.t.TapeID("ref")+"+"+b.t.TapeID("train"),
		fmt.Sprintf("train(%s)vs(%s)|offlineregions=%d", train, avep, trainRegionThreshold), 0)
}
