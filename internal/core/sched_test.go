package core

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/guest"
	"repro/internal/interp"
)

func TestSchedulerRunsAllUnits(t *testing.T) {
	s := NewScheduler(3)
	var n atomic.Int64
	for i := 0; i < 50; i++ {
		s.Go(func() error { n.Add(1); return nil })
	}
	if err := s.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if n.Load() != 50 {
		t.Fatalf("ran %d of 50 units", n.Load())
	}
}

func TestSchedulerFailFast(t *testing.T) {
	s := NewScheduler(1)
	boom := errors.New("boom")
	var after atomic.Int64
	s.Go(func() error { return boom })
	// Give the failure time to land, then schedule more units: they must
	// be dropped, not run.
	if err := s.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want boom", err)
	}
	for i := 0; i < 10; i++ {
		s.Go(func() error { after.Add(1); return nil })
	}
	s.Wait()
	if after.Load() != 0 {
		t.Fatalf("%d units ran after failure", after.Load())
	}
}

func TestSchedulerFirstErrorWins(t *testing.T) {
	s := NewScheduler(4)
	first := errors.New("first")
	s.Go(func() error { return first })
	s.Go(func() error {
		time.Sleep(20 * time.Millisecond)
		return errors.New("late")
	})
	err := s.Wait()
	if !errors.Is(err, first) {
		t.Fatalf("Wait = %v, want the first error", err)
	}
}

// TestScheduledBenchmarkInterruptsSiblings: a failing benchmark must
// stop the other benchmarks' translator runs through the interrupt
// channel instead of letting them run to completion.
func TestScheduledBenchmarkInterruptsSiblings(t *testing.T) {
	// A benchmark whose build fails immediately.
	bad := Target{
		Name: "bad",
		Build: func(input string) (*guest.Image, interp.Tape, error) {
			return nil, nil, errors.New("no such program")
		},
	}
	// A very long-running benchmark (far beyond test patience without
	// the interrupt).
	slow := BuildFromAsm("slow", loopProgram())

	// Three slots: the slow benchmark's two run units occupy two, so the
	// failing benchmark still gets one to report from.
	s := NewScheduler(3)
	ScheduleBenchmark(s, slow, Options{Thresholds: []uint64{100}}, nil)
	// Let the slow run start before the failure arrives.
	time.Sleep(50 * time.Millisecond)
	ScheduleBenchmark(s, bad, Options{Thresholds: []uint64{100}}, nil)
	done := make(chan error, 1)
	go func() { done <- s.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatalf("Wait returned nil, want the build failure")
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("fail-fast did not interrupt the long-running benchmark")
	}
}

// loopProgram iterates ~2^32 times (r1 wraps to zero), far beyond test
// patience, so completing it means fail-fast cancellation is broken.
func loopProgram() string {
	return `
.entry main
main:
	loadi r1, 0
	loadi r2, 8191
outer:
	in r4
	blt r4, r2, hot
hot:
	addi r1, r1, 1
	bne r1, r0, outer
	halt
`
}

// TestBuildCacheBuildsOncePerInput: with a tape factory the scheduler
// must invoke Build once per (benchmark, input) regardless of ladder
// width or run mode.
func TestBuildCacheBuildsOncePerInput(t *testing.T) {
	for _, independent := range []bool{false, true} {
		var builds atomic.Int64
		base := BuildFromAsm("cached", counterProgram())
		target := Target{
			Name: "cached",
			Build: func(input string) (*guest.Image, interp.Tape, error) {
				builds.Add(1)
				return base.Build(input)
			},
			NewTape: base.NewTape,
		}
		opts := Options{
			Thresholds:      []uint64{50, 100, 200, 400},
			IndependentRuns: independent,
		}
		if _, err := RunBenchmark(target, opts); err != nil {
			t.Fatalf("independent=%v: %v", independent, err)
		}
		if got := builds.Load(); got != 2 {
			t.Fatalf("independent=%v: Build called %d times, want 2 (ref+train)", independent, got)
		}
	}
}

func counterProgram() string {
	return `
.entry main
main:
	loadi r1, 0
	loadi r2, 2000
	loadi r3, 4096
loop:
	in r4
	blt r4, r3, taken
	addi r5, r5, 1
taken:
	addi r1, r1, 1
	blt r1, r2, loop
	halt
`
}

// TestScheduledModesAgree: the shared-trace pipeline, the
// independent-run pipeline, and any worker count must all produce the
// identical benchmark result.
func TestScheduledModesAgree(t *testing.T) {
	// The duplicate rung exercises the shared-trace dedup fan-out, which
	// must be invisible next to independent mode's genuine repeat runs.
	target := BuildFromAsm("modes", counterProgram())
	opts := Options{Thresholds: []uint64{20, 50, 50, 100}, Perf: true, KeepNormalized: true}

	ref, err := RunBenchmark(target, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		for _, independent := range []bool{false, true} {
			o := opts
			o.Workers = workers
			o.IndependentRuns = independent
			got, err := RunBenchmark(target, o)
			if err != nil {
				t.Fatalf("workers=%d independent=%v: %v", workers, independent, err)
			}
			if !reflect.DeepEqual(got, ref) {
				t.Fatalf("workers=%d independent=%v: results differ from reference", workers, independent)
			}
		}
	}
}

// TestKeepNormalizedDefaultOff: the memory knob must drop the per-run
// navep result unless requested.
func TestKeepNormalizedDefaultOff(t *testing.T) {
	target := BuildFromAsm("keepnorm", counterProgram())
	res, err := RunBenchmark(target, Options{Thresholds: []uint64{50}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Results[0].Normalized != nil {
		t.Fatalf("Normalized retained without KeepNormalized")
	}
	res, err = RunBenchmark(target, Options{Thresholds: []uint64{50}, KeepNormalized: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Results[0].Normalized == nil {
		t.Fatalf("Normalized dropped despite KeepNormalized")
	}
}
