package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/metrics"
	"repro/internal/navep"
)

// MispredictKind classifies why an initial-profile branch prediction
// disagrees with the average profile (the paper's first future-work
// item: "characterize the mis-predicted branches ... so that branches
// that cannot be predicted accurately by the initial profile may be
// selected for continuous profiling").
type MispredictKind int

const (
	// MispredictSampling marks deviations explicable by the sampling
	// noise of a T-sized window: a longer profile would fix them.
	MispredictSampling MispredictKind = iota
	// MispredictSystematic marks deviations beyond sampling noise: the
	// branch behaves differently early than on average (phase-like),
	// so no fixed window fixes it — it is a candidate for continuous
	// profiling.
	MispredictSystematic
)

// String returns "sampling" or "systematic".
func (k MispredictKind) String() string {
	if k == MispredictSystematic {
		return "systematic"
	}
	return "sampling"
}

// Mispredict is one branch whose predicted bucket differs from its
// average bucket, with the noise analysis behind its classification.
type Mispredict struct {
	Addr   int
	CopyID int
	BT, BM float64
	W      float64
	// Sigma is the standard error of a T-sample estimate of BM.
	Sigma float64
	// Zscore is |BT-BM| / Sigma.
	Zscore float64
	Kind   MispredictKind
}

// Characterization summarizes the misprediction analysis of one
// INIP(T)-vs-AVEP comparison.
type Characterization struct {
	T uint64
	// Mispredicts lists every bucket-mismatching branch, heaviest
	// first.
	Mispredicts []Mispredict
	// SystematicWeight and SamplingWeight split the total mismatched
	// weight by cause.
	SystematicWeight float64
	SamplingWeight   float64
	// TotalWeight is the weight of all compared branches.
	TotalWeight float64
}

// Characterize classifies the mispredicted branches of a normalized
// comparison. T is the retranslation threshold of the initial profile
// (the sample size behind each frozen estimate; counters freeze with
// use in [T, 2T], so T is the conservative window size).
//
// A branch counts as mispredicted when its predicted and average
// probabilities fall in different optimizer buckets. It is systematic
// when the deviation exceeds three standard errors of a T-sample
// binomial estimate — sampling alone would almost never produce it.
func Characterize(norm *navep.Result, t uint64) *Characterization {
	if t < 1 {
		t = 1
	}
	out := &Characterization{T: t}
	for _, b := range norm.Blocks {
		out.TotalWeight += b.W
		if metrics.BPBucket(b.BT) == metrics.BPBucket(b.BM) {
			continue
		}
		sigma := math.Sqrt(b.BM * (1 - b.BM) / float64(t))
		const minSigma = 1e-9
		if sigma < minSigma {
			sigma = minSigma
		}
		m := Mispredict{
			Addr: b.Addr, CopyID: b.CopyID,
			BT: b.BT, BM: b.BM, W: b.W,
			Sigma:  sigma,
			Zscore: math.Abs(b.BT-b.BM) / sigma,
		}
		if m.Zscore > 3 {
			m.Kind = MispredictSystematic
			out.SystematicWeight += b.W
		} else {
			m.Kind = MispredictSampling
			out.SamplingWeight += b.W
		}
		out.Mispredicts = append(out.Mispredicts, m)
	}
	sort.Slice(out.Mispredicts, func(i, j int) bool {
		if out.Mispredicts[i].W != out.Mispredicts[j].W {
			return out.Mispredicts[i].W > out.Mispredicts[j].W
		}
		return out.Mispredicts[i].Addr < out.Mispredicts[j].Addr
	})
	return out
}

// Render formats the characterization as text.
func (c *Characterization) Render(maxRows int) string {
	var b strings.Builder
	total := c.SystematicWeight + c.SamplingWeight
	fmt.Fprintf(&b, "mispredicted branches at T=%d: %d instances, %.1f%% of branch weight\n",
		c.T, len(c.Mispredicts), 100*total/math.Max(c.TotalWeight, 1))
	if total > 0 {
		fmt.Fprintf(&b, "  systematic (phase-like, needs continuous profiling): %.1f%%\n",
			100*c.SystematicWeight/total)
		fmt.Fprintf(&b, "  sampling (a longer window would fix it):             %.1f%%\n",
			100*c.SamplingWeight/total)
	}
	rows := len(c.Mispredicts)
	if maxRows > 0 && rows > maxRows {
		rows = maxRows
	}
	for _, m := range c.Mispredicts[:rows] {
		fmt.Fprintf(&b, "  block %6d copy %4d  BT=%.3f BM=%.3f W=%.0f  z=%.1f  %s\n",
			m.Addr, m.CopyID, m.BT, m.BM, m.W, m.Zscore, m.Kind)
	}
	if rows < len(c.Mispredicts) {
		fmt.Fprintf(&b, "  ... %d more\n", len(c.Mispredicts)-rows)
	}
	return b.String()
}
