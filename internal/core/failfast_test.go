package core

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/dbt"
	"repro/internal/guest"
	"repro/internal/interp"
)

// TestFailFastFirstErrorVerbatim: a failing unit must surface its error
// verbatim as the scheduler's first error, the benchmark's onDone must
// never fire, and no ThresholdResult may be partially recorded.
func TestFailFastFirstErrorVerbatim(t *testing.T) {
	boom := errors.New("the build exploded")
	bad := Target{
		Name: "failing",
		Build: func(input string) (*guest.Image, interp.Tape, error) {
			if input == "ref" {
				return nil, nil, boom
			}
			return BuildFromAsm("failing", counterProgram()).Build(input)
		},
	}
	s := NewScheduler(2)
	var doneCalls atomic.Int64
	b := scheduleBenchmark(s, bad, Options{Thresholds: []uint64{20, 50, 100}},
		func(*BenchmarkResult) { doneCalls.Add(1) })
	err := s.Wait()
	if err == nil {
		t.Fatal("Wait returned nil, want the build failure")
	}
	if want := "core: build failing/ref: the build exploded"; err.Error() != want {
		t.Fatalf("error not verbatim:\n got %q\nwant %q", err.Error(), want)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("error chain lost the cause: %v", err)
	}
	if doneCalls.Load() != 0 {
		t.Fatal("onDone fired despite failure")
	}
	// The reference unit failed before any comparison was spawned, so the
	// ladder slots must be untouched zero values — a failing study must
	// not leave half-written results behind.
	for i, tr := range b.out.Results {
		if !reflect.DeepEqual(tr, (ThresholdResult{})) {
			t.Fatalf("Results[%d] partially recorded after failure: %+v", i, tr)
		}
	}

	// Scheduling onto the already-failed scheduler drops every unit: no
	// result writes, no onDone, same first error.
	good := BuildFromAsm("late", counterProgram())
	late := scheduleBenchmark(s, good, Options{Thresholds: []uint64{20}},
		func(*BenchmarkResult) { doneCalls.Add(1) })
	if werr := s.Wait(); werr != err {
		t.Fatalf("first error replaced: %v", werr)
	}
	if doneCalls.Load() != 0 {
		t.Fatal("onDone fired for a benchmark scheduled after failure")
	}
	if late.out.AVEP != nil || !reflect.DeepEqual(late.out.Results[0], (ThresholdResult{})) {
		t.Fatal("dropped benchmark recorded results")
	}
}

// TestFailFastComparisonErrorVerbatim drives the deepest failure path —
// the training comparison, which runs inline in a run unit rather than
// as its own scheduled unit — and checks it reaches the scheduler
// verbatim without retiring the work item.
func TestFailFastComparisonErrorVerbatim(t *testing.T) {
	target := BuildFromAsm("cmpfail", counterProgram())
	img, tape, err := target.Build("ref")
	if err != nil {
		t.Fatal(err)
	}
	// An optimized snapshot carries regions, which navep rejects as an
	// average profile — the natural way to force a comparison error.
	optimized, _, err := dbt.Run(img, tape, dbt.Config{
		Input: "ref", Optimize: true, Threshold: 20, RegisterTwice: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(optimized.Regions) == 0 {
		t.Fatal("optimized run formed no regions; test premise broken")
	}
	trainTape, err := target.NewTape("train")
	if err != nil {
		t.Fatal(err)
	}
	train, _, err := dbt.Run(img, trainTape, dbt.Config{Input: "train"})
	if err != nil {
		t.Fatal(err)
	}

	s := NewScheduler(1)
	var doneCalls atomic.Int64
	b := &benchRun{
		s:      s,
		t:      target,
		out:    &BenchmarkResult{Name: target.Name},
		onDone: func(*BenchmarkResult) { doneCalls.Add(1) },
	}
	b.out.AVEP = optimized
	b.avep = optimized
	b.train = train
	b.remaining = 1
	b.maybeCompareTrain(0)

	err = s.Wait()
	want := fmt.Sprintf("core: train comparison of cmpfail: navep: average profile must be unoptimized, has %d regions",
		len(optimized.Regions))
	if err == nil || err.Error() != want {
		t.Fatalf("error not verbatim:\n got %v\nwant %q", err, want)
	}
	if doneCalls.Load() != 0 {
		t.Fatal("onDone fired despite comparison failure")
	}
	b.mu.Lock()
	remaining := b.remaining
	b.mu.Unlock()
	if remaining != 1 {
		t.Fatalf("failed comparison retired a work item: remaining = %d", remaining)
	}
}

// TestLadderCollapseDedup: duplicate effective thresholds (a heavily
// scaled-down ladder clamps several rungs to the same value) must run
// one follower per distinct threshold in shared-trace mode, with the
// shared result fanned out to every collapsed rung under its own label.
func TestLadderCollapseDedup(t *testing.T) {
	target := BuildFromAsm("collapse", counterProgram())
	collapsed := []uint64{50, 50, 50, 100}
	distinct := []uint64{50, 100}

	runWith := func(ladder []uint64, independent bool) (*BenchmarkResult, *Timing) {
		var tm Timing
		res, err := RunBenchmark(target, Options{
			Thresholds:      ladder,
			Perf:            true,
			IndependentRuns: independent,
			Timing:          &tm,
		})
		if err != nil {
			t.Fatalf("ladder %v independent=%v: %v", ladder, independent, err)
		}
		return res, &tm
	}

	dup, dupTm := runWith(collapsed, false)
	ded, dedTm := runWith(distinct, false)
	indep, indepTm := runWith(collapsed, true)

	// Every collapsed rung carries the shared result under its own label.
	for i, wantT := range collapsed {
		if dup.Results[i].T != wantT {
			t.Fatalf("Results[%d].T = %d, want %d", i, dup.Results[i].T, wantT)
		}
	}
	for i := 1; i < 3; i++ {
		if !reflect.DeepEqual(dup.Results[0], dup.Results[i]) {
			t.Fatalf("collapsed rungs 0 and %d differ", i)
		}
	}
	if !reflect.DeepEqual(dup.Results[0], ded.Results[0]) || !reflect.DeepEqual(dup.Results[3], ded.Results[1]) {
		t.Fatal("collapsed ladder results differ from the distinct ladder")
	}

	// Dedup is real work saved: the duplicated shared-trace ladder
	// executes exactly as many blocks as the distinct one, while
	// independent mode pays for every duplicate rung again.
	if got, want := dupTm.BlocksExecuted.Load(), dedTm.BlocksExecuted.Load(); got != want {
		t.Fatalf("deduped ladder executed %d blocks, distinct ladder %d", got, want)
	}
	if indepTm.BlocksExecuted.Load() <= dupTm.BlocksExecuted.Load() {
		t.Fatalf("independent mode (%d blocks) should exceed deduped shared mode (%d)",
			indepTm.BlocksExecuted.Load(), dupTm.BlocksExecuted.Load())
	}

	// And determinism still holds: independent duplicate runs produce the
	// values the fan-out copied.
	if !reflect.DeepEqual(indep, dup) {
		t.Fatal("independent-run results differ from deduped shared-trace results")
	}
}
