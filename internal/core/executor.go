// Unit execution behind an interface: the study pipeline names *what*
// to run (a benchmark target plus options) while a UnitExecutor decides
// *where* — on this process's scheduler, or on a fleet of workers
// behind a lease protocol (internal/fleet). The local implementation
// is a thin adapter over ScheduleBenchmark, so a study driven through
// it is bit-exact with the direct path.
package core

// UnitExecutor executes one benchmark's complete study unit — the
// reference/AVEP run, the training run and the per-threshold
// comparisons — and returns its result.
//
// cancel is closed when the caller no longer wants the result (study
// stop or fail-fast cancellation); an implementation must then return
// promptly, conventionally with ErrStopped. Implementations must be
// safe for concurrent calls: an executor-mode study issues one call
// per benchmark, all in flight at once.
//
// The contract that makes distribution safe is determinism: for a
// given (Target, Options) pair the result is byte-identical no matter
// which process computes it, how many workers it shares a pool with,
// or whether it was replayed from the result cache. Everything the
// fleet layer does (reassigning expired leases, accepting the first
// of duplicate completions) leans on that.
type UnitExecutor interface {
	ExecuteUnit(t Target, opts Options, cancel <-chan struct{}) (*BenchmarkResult, error)
}

// LocalExecutor runs units in-process on a scheduler — the
// transport-free implementation, and the reference for equivalence
// tests: a study wired through it decomposes into exactly the same
// scheduler units as the direct ScheduleBenchmark path.
//
// S may be left nil by study drivers; study.Run binds a nil-scheduler
// LocalExecutor to its own shared pool, which reproduces the
// single-process study's concurrency structure exactly.
type LocalExecutor struct {
	S *Scheduler
}

// ExecuteUnit schedules the benchmark on the executor's pool and waits
// for its completion callback. When the pool cancels instead (stop or
// fail-fast error elsewhere), the in-flight units are interrupted
// through the scheduler's Done channel and the pool's first error is
// returned.
func (e *LocalExecutor) ExecuteUnit(t Target, opts Options, cancel <-chan struct{}) (*BenchmarkResult, error) {
	done := make(chan *BenchmarkResult, 1)
	ScheduleBenchmark(e.S, t, opts, func(r *BenchmarkResult) { done <- r })
	select {
	case r := <-done:
		return r, nil
	case <-e.S.Done():
	case <-cancel:
	}
	// Cancelled — but the completion callback races the cancel signal,
	// and a result that made it out is always preferable (it is the
	// same bytes a clean run produces).
	select {
	case r := <-done:
		return r, nil
	default:
	}
	if err := e.S.Err(); err != nil {
		return nil, err
	}
	return nil, ErrStopped
}
