package core

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

func mustPlan(t *testing.T, spec string) *faultinject.Plan {
	t.Helper()
	p, err := faultinject.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// runDegraded schedules every target on one Degrade scheduler and
// returns the completed results by name.
func runDegraded(t *testing.T, opts Options, targets ...Target) map[string]*BenchmarkResult {
	t.Helper()
	s := NewSchedulerPolicy(2, Degrade)
	done := make(map[string]*BenchmarkResult)
	var mu chan struct{} = make(chan struct{}, 1)
	mu <- struct{}{}
	for _, target := range targets {
		target := target
		ScheduleBenchmark(s, target, opts, func(r *BenchmarkResult) {
			<-mu
			done[r.Name] = r
			mu <- struct{}{}
		})
	}
	if err := s.Wait(); err != nil {
		t.Fatalf("Degrade study failed outright: %v", err)
	}
	return done
}

// TestDegradeIsolatesFailingBenchmark: with an injected build failure
// on one benchmark, the study must complete, record exactly one
// UnitFailure on that benchmark, and leave the surviving benchmark's
// result bit-identical to a run without any faults.
func TestDegradeIsolatesFailingBenchmark(t *testing.T) {
	opts := Options{Thresholds: []uint64{50, 100}, Perf: true}
	bad := BuildFromAsm("bad", counterProgram())
	good := BuildFromAsm("good", counterProgram())

	clean, err := RunBenchmark(good, opts)
	if err != nil {
		t.Fatal(err)
	}

	faulty := opts
	faulty.Faults = mustPlan(t, "build:bad/ref")
	done := runDegraded(t, faulty, bad, good)

	if len(done) != 2 {
		t.Fatalf("completed %d benchmarks, want 2", len(done))
	}
	b := done["bad"]
	if len(b.Failures) != 1 {
		t.Fatalf("bad.Failures = %+v, want exactly one", b.Failures)
	}
	f := b.Failures[0]
	if f.Bench != "bad" || f.Unit != obs.UnitRef || f.Attempts != 1 {
		t.Fatalf("failure misattributed: %+v", f)
	}
	if want := "core: build bad/ref: faultinject: build failure for bad/ref"; f.Err != want {
		t.Fatalf("failure error = %q, want %q", f.Err, want)
	}
	for i, tr := range b.Results {
		if !reflect.DeepEqual(tr, (ThresholdResult{})) {
			t.Fatalf("failed benchmark recorded Results[%d]: %+v", i, tr)
		}
	}
	if !reflect.DeepEqual(done["good"], clean) {
		t.Fatal("surviving benchmark's result differs from the fault-free run")
	}
}

// TestDegradePanicBecomesUnitFailure: an injected panic in one
// threshold's comparison must degrade exactly that rung, not crash the
// process or take down the other rungs.
func TestDegradePanicBecomesUnitFailure(t *testing.T) {
	opts := Options{
		Thresholds: []uint64{50, 100},
		Faults:     mustPlan(t, "panic:pan/compare@100*1"),
	}
	done := runDegraded(t, opts, BuildFromAsm("pan", counterProgram()))
	b := done["pan"]
	if len(b.Failures) != 1 {
		t.Fatalf("Failures = %+v, want exactly one", b.Failures)
	}
	f := b.Failures[0]
	if f.Unit != obs.UnitCompare || f.T != 100 {
		t.Fatalf("failure misattributed: %+v", f)
	}
	if want := "core: compare unit of pan panicked: faultinject: panic in pan/compare"; f.Err != want {
		t.Fatalf("failure error = %q, want %q", f.Err, want)
	}
	if b.Results[0].Summary.Blocks == 0 {
		t.Fatal("surviving rung T=50 lost its result")
	}
	if !reflect.DeepEqual(b.Results[1], (ThresholdResult{})) {
		t.Fatalf("panicked rung recorded a result: %+v", b.Results[1])
	}
}

// TestFailFastPanicIsFirstError: under the default policy an injected
// panic must cancel the study with the converted error, like any other
// unit failure.
func TestFailFastPanicIsFirstError(t *testing.T) {
	s := NewScheduler(2)
	opts := Options{
		Thresholds: []uint64{50},
		Faults:     mustPlan(t, "panic:pan/ref"),
	}
	ScheduleBenchmark(s, BuildFromAsm("pan", counterProgram()), opts, nil)
	err := s.Wait()
	if want := "core: ref unit of pan panicked: faultinject: panic in pan/ref"; err == nil || err.Error() != want {
		t.Fatalf("Wait = %v, want %q", err, want)
	}
}

// TestRetryRecoversTransientFault: a bounded build fault ("fail twice,
// then work") must be absorbed by the retry loop, leaving a result
// identical to a fault-free run plus a retry count of two.
func TestRetryRecoversTransientFault(t *testing.T) {
	target := BuildFromAsm("flaky", counterProgram())
	opts := Options{Thresholds: []uint64{50, 100}, Perf: true}
	clean, err := RunBenchmark(target, opts)
	if err != nil {
		t.Fatal(err)
	}

	var tm Timing
	faulty := opts
	faulty.Faults = mustPlan(t, "build:flaky/ref*2")
	faulty.MaxAttempts = 3
	faulty.Timing = &tm
	got, err := RunBenchmark(target, faulty)
	if err != nil {
		t.Fatalf("transient fault not recovered: %v", err)
	}
	if !reflect.DeepEqual(got, clean) {
		t.Fatal("recovered result differs from the fault-free run")
	}
	if retries := tm.Retries.Load(); retries != 2 {
		t.Fatalf("Retries = %d, want 2", retries)
	}
	if !faulty.Faults.Empty() {
		t.Fatalf("bounded fault still armed: %s", faulty.Faults)
	}
}

// TestRetryGivesUpAtMaxAttempts: an unbounded fault must exhaust
// MaxAttempts and surface the attempt count in the recorded failure.
func TestRetryGivesUpAtMaxAttempts(t *testing.T) {
	opts := Options{
		Thresholds:   []uint64{50},
		Faults:       mustPlan(t, "build:doomed/ref"),
		MaxAttempts:  3,
		RetryBackoff: time.Microsecond,
	}
	done := runDegraded(t, opts, BuildFromAsm("doomed", counterProgram()))
	b := done["doomed"]
	if len(b.Failures) != 1 || b.Failures[0].Attempts != 3 {
		t.Fatalf("Failures = %+v, want one failure after 3 attempts", b.Failures)
	}
}

// TestDegradeTrapIsolatesGuestFault: an injected guest trap mid-run
// must be recorded as a reference-unit failure while the sibling
// benchmark completes untouched.
func TestDegradeTrapIsolatesGuestFault(t *testing.T) {
	opts := Options{Thresholds: []uint64{50}}
	clean, err := RunBenchmark(BuildFromAsm("ok", counterProgram()), opts)
	if err != nil {
		t.Fatal(err)
	}
	faulty := opts
	faulty.Faults = mustPlan(t, "trap:trapped/ref@50")
	done := runDegraded(t, faulty,
		BuildFromAsm("trapped", counterProgram()), BuildFromAsm("ok", counterProgram()))
	b := done["trapped"]
	if len(b.Failures) != 1 || b.Failures[0].Unit != obs.UnitRef {
		t.Fatalf("Failures = %+v, want one ref-unit failure", b.Failures)
	}
	if !reflect.DeepEqual(done["ok"], clean) {
		t.Fatal("sibling benchmark's result differs from the fault-free run")
	}
}

// TestSlowFaultOnlyDelays: a slow fault must not change any result.
func TestSlowFaultOnlyDelays(t *testing.T) {
	target := BuildFromAsm("slowpoke", counterProgram())
	opts := Options{Thresholds: []uint64{50}}
	clean, err := RunBenchmark(target, opts)
	if err != nil {
		t.Fatal(err)
	}
	faulty := opts
	faulty.Faults = mustPlan(t, "slow:slowpoke/train:10ms*1")
	start := time.Now()
	got, err := RunBenchmark(target, faulty)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, clean) {
		t.Fatal("slow fault changed the result")
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Fatal("slow fault did not delay the unit")
	}
}

// TestStopReturnsErrStopped: cooperative Stop must interrupt in-flight
// guest runs and surface ErrStopped, not a unit error.
func TestStopReturnsErrStopped(t *testing.T) {
	for _, policy := range []FailurePolicy{FailFast, Degrade} {
		s := NewSchedulerPolicy(2, policy)
		ScheduleBenchmark(s, BuildFromAsm("longrun", loopProgram()),
			Options{Thresholds: []uint64{100}}, nil)
		time.Sleep(20 * time.Millisecond)
		s.Stop()
		done := make(chan error, 1)
		go func() { done <- s.Wait() }()
		select {
		case err := <-done:
			if !errors.Is(err, ErrStopped) {
				t.Fatalf("policy %v: Wait = %v, want ErrStopped", policy, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("policy %v: Stop did not interrupt the running benchmark", policy)
		}
	}
}

// TestParseFailurePolicy covers the flag round trip.
func TestParseFailurePolicy(t *testing.T) {
	for _, p := range []FailurePolicy{FailFast, Degrade} {
		got, err := ParseFailurePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("round trip of %v: %v, %v", p, got, err)
		}
	}
	if _, err := ParseFailurePolicy("explode"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
