package core

import (
	"strconv"
	"testing"

	"repro/internal/profile"
)

// stationarySrc is a loop whose single data-driven branch keeps the same
// bias for the whole run: the easy case for initial prediction.
func stationarySrc(iters, bias int) string {
	return `
.entry main
main:
	loadi r0, 0
	loadi r14, 0
	loadi r6, ` + strconv.Itoa(bias) + `
	loadi r10, ` + strconv.Itoa(iters) + `
loop:
	in r1
	blt r1, r6, taken
	addi r2, r2, 1
	jmp next
taken:
	addi r3, r3, 1
next:
	addi r14, r14, 1
	blt r14, r10, loop
	halt
`
}

// phasedSrc flips the branch bias from earlyBias to lateBias after
// `boundary` iterations: the pathological case for a single profiling
// phase (the paper's Mcf).
func phasedSrc(iters, boundary, earlyBias, lateBias int) string {
	return `
.entry main
main:
	loadi r0, 0
	loadi r14, 0
	loadi r7, ` + strconv.Itoa(earlyBias) + `
	loadi r8, ` + strconv.Itoa(lateBias) + `
	loadi r9, ` + strconv.Itoa(boundary) + `
	loadi r10, ` + strconv.Itoa(iters) + `
loop:
	blt r14, r9, early
	mov r6, r8
	jmp body
early:
	mov r6, r7
body:
	in r1
	blt r1, r6, taken
	addi r2, r2, 1
	jmp next
taken:
	addi r3, r3, 1
next:
	addi r14, r14, 1
	blt r14, r10, loop
	halt
`
}

func TestCompareIdenticalSnapshotsIsZero(t *testing.T) {
	target := BuildFromAsm("stationary", stationarySrc(3000, 6144))
	res, err := RunBenchmark(target, Options{Thresholds: []uint64{1 << 40}})
	if err != nil {
		t.Fatal(err)
	}
	// A threshold beyond the whole run never freezes anything, so the
	// initial profile equals the average profile exactly.
	tr := res.Results[0]
	if tr.Summary.SdBP != 0 || tr.Summary.BPMismatch != 0 {
		t.Fatalf("INIP(inf) vs AVEP: %+v, want exact match", tr.Summary)
	}
	if tr.Summary.HasRegions {
		t.Fatal("no regions should have formed")
	}
}

func TestStationaryProgramPredictsWell(t *testing.T) {
	target := BuildFromAsm("stationary", stationarySrc(20000, 7372)) // p=0.9
	res, err := RunBenchmark(target, Options{Thresholds: []uint64{100}})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Results[0]
	if !tr.Summary.HasRegions {
		t.Fatal("expected regions at T=100 on a hot loop")
	}
	// Stationary behaviour: the 100-sample window estimate is close to
	// the long-run average.
	if tr.Summary.SdBP > 0.08 {
		t.Fatalf("stationary Sd.BP(100) = %v, want small", tr.Summary.SdBP)
	}
	if tr.Summary.BPMismatch > 0.05 {
		t.Fatalf("stationary mismatch = %v, want ~0", tr.Summary.BPMismatch)
	}
}

func TestPhasedProgramDefeatsInitialPrediction(t *testing.T) {
	// Early phase: branch taken with p=0.95; after iteration 2000 it
	// drops to p=0.10. The average sits near 0.31 (2000 iters at .95,
	// 6000 at .10), so a T=100 initial profile (frozen inside the early
	// phase) must show a large Sd.BP, while the same program without a
	// phase change shows a small one.
	phased := BuildFromAsm("phased", phasedSrc(8000, 2000, 7782, 819))
	res, err := RunBenchmark(phased, Options{Thresholds: []uint64{100}})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Results[0]
	if !tr.Summary.HasRegions {
		t.Fatal("expected regions")
	}
	if tr.Summary.SdBP < 0.2 {
		t.Fatalf("phased Sd.BP(100) = %v, want large (phase change invisible to initial profile)", tr.Summary.SdBP)
	}
	if tr.Summary.BPMismatch == 0 {
		t.Fatal("phased program must show range mismatches")
	}
}

func TestProfilingOpsMonotonicallyGrowWithThreshold(t *testing.T) {
	target := BuildFromAsm("stationary", stationarySrc(20000, 6144))
	res, err := RunBenchmark(target, Options{Thresholds: []uint64{50, 500, 5000}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 3 {
		t.Fatalf("results = %d", len(res.Results))
	}
	prev := uint64(0)
	for _, tr := range res.Results {
		if tr.ProfilingOps < prev {
			t.Fatalf("profiling ops decreased along the ladder: %+v", res.Results)
		}
		prev = tr.ProfilingOps
	}
	// Small thresholds need well under the training run's ops.
	if res.Results[0].ProfilingOps*5 > res.TrainOps {
		t.Fatalf("INIP(50) ops %d vs train %d: expected <20%%", res.Results[0].ProfilingOps, res.TrainOps)
	}
}

func TestTrainComparisonPopulated(t *testing.T) {
	target := BuildFromAsm("stationary", stationarySrc(10000, 5734))
	res, err := RunBenchmark(target, Options{Thresholds: nil})
	if err != nil {
		t.Fatal(err)
	}
	if res.Train.Blocks == 0 {
		t.Fatal("train comparison saw no blocks")
	}
	if res.Train.HasRegions {
		t.Fatal("train comparison must not have regions")
	}
	// Same program structure, different tape seed: small but non-zero
	// sampling deviation.
	if res.Train.SdBP <= 0 || res.Train.SdBP > 0.1 {
		t.Fatalf("train Sd.BP = %v, want small non-zero", res.Train.SdBP)
	}
}

func TestPerfEnabledPopulatesCycles(t *testing.T) {
	// The run must be long enough to amortize the one-time optimization
	// cost (OptPerInst is large: optimizers are slow relative to
	// execution).
	target := BuildFromAsm("stationary", stationarySrc(300000, 7372))
	res, err := RunBenchmark(target, Options{Thresholds: []uint64{100}, Perf: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.AVEPCycles <= 0 {
		t.Fatal("AVEP cycles missing")
	}
	if res.Results[0].Cycles <= 0 {
		t.Fatal("INIP cycles missing")
	}
	// Optimizing a hot predictable loop must beat never optimizing.
	if res.Results[0].Cycles >= res.AVEPCycles {
		t.Fatalf("INIP(100) cycles %v, AVEP %v: optimization should pay off", res.Results[0].Cycles, res.AVEPCycles)
	}
}

func TestKeepSnapshots(t *testing.T) {
	target := BuildFromAsm("stationary", stationarySrc(3000, 6144))
	res, err := RunBenchmark(target, Options{Thresholds: []uint64{100}, KeepSnapshots: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Results[0].Snapshot == nil {
		t.Fatal("snapshot not kept")
	}
	if err := res.Results[0].Snapshot.Validate(); err != nil {
		t.Fatal(err)
	}
	res2, err := RunBenchmark(target, Options{Thresholds: []uint64{100}})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Results[0].Snapshot != nil {
		t.Fatal("snapshot kept despite KeepSnapshots=false")
	}
}

// nestedLoopSrc is the shape of the paper's Figure 1 (Mcf
// price_out_impl): an outer loop over an inner loop, where the inner
// loop body block is shared and will be duplicated into two loop
// regions by the optimizer.
func nestedLoopSrc(outer, innerBias int) string {
	return `
.entry main
main:
	loadi r0, 0
	loadi r11, 0
	loadi r10, ` + strconv.Itoa(outer) + `
	loadi r6, ` + strconv.Itoa(innerBias) + `
outerloop:
	addi r11, r11, 1
innerbody:
	in r1
	blt r1, r6, innerbody
	blt r11, r10, outerloop
	halt
`
}

func TestNestedLoopsFormLoopRegions(t *testing.T) {
	target := BuildFromAsm("mcfshape", nestedLoopSrc(4000, 7372))
	res, err := RunBenchmark(target, Options{Thresholds: []uint64{200}, KeepSnapshots: true, KeepNormalized: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Results[0]
	if tr.Summary.Loops == 0 {
		t.Fatal("nested loop program formed no loop regions")
	}
	var loops int
	for _, r := range tr.Snapshot.Regions {
		if r.Kind == profile.RegionLoop {
			loops++
		}
	}
	if loops == 0 {
		t.Fatal("no loop regions in snapshot")
	}
	// The inner loop's LP should be near its bias (0.9).
	found := false
	for _, li := range tr.Normalized.Loops {
		if li.LT > 0.8 && li.LT <= 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no loop with LP near 0.9: %+v", tr.Normalized.Loops)
	}
}

func TestRunBenchmarkRejectsNilBuilder(t *testing.T) {
	if _, err := RunBenchmark(Target{Name: "x"}, Options{}); err == nil {
		t.Fatal("nil builder accepted")
	}
}
