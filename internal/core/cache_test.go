package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/resultcache"
)

// cacheOpts is the option baseline of the caching tests: a couple of
// ladder rungs, the perf model on (so cached Cycles are exercised) and
// a Timing aggregate to observe guest-block volume.
func cacheOpts(t *testing.T, dir string) (Options, *Timing) {
	t.Helper()
	store, err := resultcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tm := &Timing{}
	return Options{
		Thresholds:   []uint64{4, 16},
		Perf:         true,
		Cache:        store,
		CacheContext: "test",
		Timing:       tm,
	}, tm
}

func runCached(t *testing.T, target Target, opts Options) *BenchmarkResult {
	t.Helper()
	out, err := RunBenchmark(target, opts)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestCacheColdThenWarm(t *testing.T) {
	dir := t.TempDir()
	target := BuildFromAsm("stationary", stationarySrc(3000, 6144))

	opts, tm := cacheOpts(t, dir)
	cold := runCached(t, target, opts)
	c := opts.Cache.Counters()
	if c.Hits != 0 || c.Stores == 0 {
		t.Fatalf("cold counters %+v, want 0 hits and some stores", c)
	}
	if tm.BlocksExecuted.Load() == 0 {
		t.Fatal("cold run executed no guest blocks")
	}

	// Warm: a fresh store handle over the same directory must serve the
	// whole benchmark without executing a single guest block, and the
	// result must be deeply equal to the cold one.
	opts2, tm2 := cacheOpts(t, dir)
	warm := runCached(t, target, opts2)
	c2 := opts2.Cache.Counters()
	if c2.Hits == 0 || c2.Misses != 0 || c2.Stores != 0 {
		t.Fatalf("warm counters %+v, want only hits", c2)
	}
	if n := tm2.BlocksExecuted.Load(); n != 0 {
		t.Fatalf("warm run executed %d guest blocks, want 0", n)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("warm result differs from cold:\ncold %+v\nwarm %+v", cold, warm)
	}
}

func TestCacheDoesNotPerturbResults(t *testing.T) {
	target := BuildFromAsm("stationary", stationarySrc(3000, 6144))
	opts, _ := cacheOpts(t, t.TempDir())
	withCache := runCached(t, target, opts)

	plain := opts
	plain.Cache = nil
	plain.Timing = &Timing{}
	uncached := runCached(t, target, plain)
	if !reflect.DeepEqual(withCache, uncached) {
		t.Fatal("cold cached run differs from an uncached run")
	}
}

func TestCacheIndependentRunsMode(t *testing.T) {
	dir := t.TempDir()
	target := BuildFromAsm("phased", phasedSrc(4000, 1000, 7782, 819))

	opts, _ := cacheOpts(t, dir)
	opts.IndependentRuns = true
	cold := runCached(t, target, opts)

	opts2, tm2 := cacheOpts(t, dir)
	opts2.IndependentRuns = true
	warm := runCached(t, target, opts2)
	if n := tm2.BlocksExecuted.Load(); n != 0 {
		t.Fatalf("warm independent-runs run executed %d blocks, want 0", n)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("warm independent-runs result differs from cold")
	}
}

func TestCachePoisonedEntriesReExecute(t *testing.T) {
	dir := t.TempDir()
	target := BuildFromAsm("stationary", stationarySrc(3000, 6144))
	opts, _ := cacheOpts(t, dir)
	cold := runCached(t, target, opts)

	// Damage every entry a different way: truncation, garbage, a bit
	// flip inside the value. The warm run must silently re-execute and
	// reproduce the cold results, then leave the store healed.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("cold run left no cache entries")
	}
	for i, e := range entries {
		p := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		switch i % 3 {
		case 0:
			data = data[:len(data)/3]
		case 1:
			data = []byte("junk")
		case 2:
			data[len(data)/2] ^= 0x20
		}
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	opts2, _ := cacheOpts(t, dir)
	warm := runCached(t, target, opts2)
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("results after cache poisoning differ from cold run")
	}
	c := opts2.Cache.Counters()
	if c.Hits != 0 || c.Errors == 0 || c.Stores == 0 {
		t.Fatalf("poisoned-run counters %+v, want no hits, some errors, rewrites", c)
	}

	// The rewrites must have healed the store: a third run is all hits.
	opts3, tm3 := cacheOpts(t, dir)
	healed := runCached(t, target, opts3)
	if n := tm3.BlocksExecuted.Load(); n != 0 {
		t.Fatalf("healed run executed %d blocks, want 0", n)
	}
	if !reflect.DeepEqual(cold, healed) {
		t.Fatal("healed run differs from cold run")
	}
}

func TestCacheVerifyCleanPass(t *testing.T) {
	dir := t.TempDir()
	target := BuildFromAsm("stationary", stationarySrc(3000, 6144))
	opts, _ := cacheOpts(t, dir)
	cold := runCached(t, target, opts)

	opts2, tm2 := cacheOpts(t, dir)
	opts2.CacheVerify = true
	verified := runCached(t, target, opts2)
	if tm2.BlocksExecuted.Load() == 0 {
		t.Fatal("verify mode must execute for real")
	}
	c := opts2.Cache.Counters()
	if c.Hits == 0 {
		t.Fatalf("verify counters %+v, want hits (entries were present)", c)
	}
	if !reflect.DeepEqual(cold, verified) {
		t.Fatal("verify-mode result differs from cold run")
	}
}

func TestCacheVerifyCatchesForgedEntry(t *testing.T) {
	dir := t.TempDir()
	target := BuildFromAsm("stationary", stationarySrc(3000, 6144))
	opts, _ := cacheOpts(t, dir)
	runCached(t, target, opts)

	// Forge a comparison entry: decode its envelope, perturb the cached
	// summary, recompute the checksum so the store itself accepts it.
	// Only the differential verify mode can catch this.
	forged := false
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		p := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		var env struct {
			Schema int             `json:"schema"`
			Key    string          `json:"key"`
			Sum    string          `json:"sum"`
			Value  json.RawMessage `json:"value"`
		}
		if err := json.Unmarshal(data, &env); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(env.Key, "kind=cmp") {
			continue
		}
		var val struct {
			Summary map[string]any `json:"summary"`
		}
		if err := json.Unmarshal(env.Value, &val); err != nil {
			t.Fatal(err)
		}
		val.Summary["SdBP"] = 0.123456789
		if env.Value, err = json.Marshal(val); err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256(env.Value)
		env.Sum = hex.EncodeToString(sum[:])
		if data, err = json.Marshal(env); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		forged = true
		break
	}
	if !forged {
		t.Fatal("no cmp entry found to forge")
	}

	opts2, _ := cacheOpts(t, dir)
	opts2.CacheVerify = true
	_, err = RunBenchmark(target, opts2)
	if err == nil || !strings.Contains(err.Error(), "cache verify") {
		t.Fatalf("verify over a forged entry returned %v, want a cache verify error", err)
	}

	// Without verify the forged-but-checksummed entry is served as-is;
	// that is the documented trust boundary, pinned here so a future
	// change that silently re-checks (and slows) every hit is noticed.
	opts3, _ := cacheOpts(t, dir)
	if _, err := RunBenchmark(target, opts3); err != nil {
		t.Fatalf("non-verify warm run failed: %v", err)
	}
}

func TestCacheSkippedUnderFaultPlan(t *testing.T) {
	plan, err := faultinject.Parse("slow:other/ref:1ms")
	if err != nil {
		t.Fatal(err)
	}
	opts, _ := cacheOpts(t, t.TempDir())
	opts.Faults = plan
	target := BuildFromAsm("stationary", stationarySrc(3000, 6144))
	runCached(t, target, opts)
	if c := opts.Cache.Counters(); c != (resultcache.Counters{}) {
		t.Fatalf("cache touched under an armed fault plan: %+v", c)
	}
}

func TestCacheSkippedWithoutTapeID(t *testing.T) {
	target := BuildFromAsm("stationary", stationarySrc(3000, 6144))
	target.TapeID = nil
	opts, _ := cacheOpts(t, t.TempDir())
	runCached(t, target, opts)
	if c := opts.Cache.Counters(); c != (resultcache.Counters{}) {
		t.Fatalf("cache touched without a tape identity: %+v", c)
	}
}
