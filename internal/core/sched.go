// Run-level work scheduler: the study pipeline is decomposed into
// independent units — per-benchmark reference runs, training runs and
// per-threshold comparisons — scheduled over one shared bounded worker
// pool. The failure policy picks what a unit error does to the rest:
// fail-fast cancellation (one failing benchmark stops the whole study)
// or graceful degradation (the failing benchmark is isolated and the
// others run to completion).
package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// FailurePolicy selects what a unit failure does to the rest of the
// study.
type FailurePolicy int

const (
	// FailFast cancels the whole pool on the first unit error: the study
	// stops, Wait returns that error verbatim, and no partial results are
	// reported. This is the default.
	FailFast FailurePolicy = iota
	// Degrade isolates a failing benchmark: its remaining units are
	// retired instead of run, the failure is recorded in the benchmark's
	// result (BenchmarkResult.Failures), and every other benchmark runs
	// to completion. The scheduler itself only cancels on Stop or on a
	// defect (a panic escaping a unit wrapper).
	Degrade
)

// String names the policy as it appears in flags and reports.
func (p FailurePolicy) String() string {
	switch p {
	case FailFast:
		return "failfast"
	case Degrade:
		return "degrade"
	}
	return fmt.Sprintf("FailurePolicy(%d)", int(p))
}

// ParseFailurePolicy parses a policy name as accepted on the command
// line.
func ParseFailurePolicy(s string) (FailurePolicy, error) {
	switch s {
	case "failfast":
		return FailFast, nil
	case "degrade":
		return Degrade, nil
	}
	return 0, fmt.Errorf("core: unknown failure policy %q (want failfast or degrade)", s)
}

// ErrStopped is the first error of a scheduler cancelled with Stop: a
// cooperative shutdown (SIGINT drain, a unit quota), distinct from a
// unit failure. Callers that checkpoint partial results test for it
// with errors.Is.
var ErrStopped = errors.New("core: study stopped")

// Scheduler is a bounded worker pool with first-error fail-fast. Units
// are scheduled with Go/GoW — including from inside a running unit,
// which is how dependent stages (e.g. the per-threshold comparisons
// that need the AVEP snapshot) are spawned without ever blocking a pool
// slot on an unfinished dependency.
//
// Pool slots carry stable ids in [0, Workers): a unit learns which slot
// it occupies (GoW), which is what lets the observability layer plot
// worker occupancy from the flight-recorder events.
type Scheduler struct {
	ids     chan int
	workers int
	policy  FailurePolicy
	done    chan struct{}
	once    sync.Once
	err     error
	wg      sync.WaitGroup
}

// NewScheduler returns a fail-fast scheduler running at most workers
// units concurrently. The default (workers <= 0) is GOMAXPROCS, which —
// unlike NumCPU — respects cgroup quotas and GOMAXPROCS overrides.
func NewScheduler(workers int) *Scheduler {
	return NewSchedulerPolicy(workers, FailFast)
}

// NewSchedulerPolicy is NewScheduler with an explicit failure policy.
func NewSchedulerPolicy(workers int, policy FailurePolicy) *Scheduler {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ids := make(chan int, workers)
	for i := 0; i < workers; i++ {
		ids <- i
	}
	return &Scheduler{
		ids:     ids,
		workers: workers,
		policy:  policy,
		done:    make(chan struct{}),
	}
}

// Policy reports the scheduler's failure policy.
func (s *Scheduler) Policy() FailurePolicy { return s.policy }

// Workers reports the resolved pool size — the number the scheduler
// actually runs with, not the possibly-zero value it was asked for.
func (s *Scheduler) Workers() int { return s.workers }

// Done returns a channel closed when the scheduler has failed. Units
// pass it to dbt.Config.Interrupt so in-flight translator runs stop
// promptly instead of running the guest to completion.
func (s *Scheduler) Done() <-chan struct{} { return s.done }

// fail records the first error and cancels the pool.
func (s *Scheduler) fail(err error) {
	s.once.Do(func() {
		s.err = err
		close(s.done)
	})
}

// Fail cancels the pool with err as its first error — the exported
// entry for drivers outside the unit machinery (an executor-mode study
// propagating a remote hard error into the pool). First error wins,
// exactly as for unit failures; a nil err is ignored.
func (s *Scheduler) Fail(err error) {
	if err != nil {
		s.fail(err)
	}
}

// Err returns the error that cancelled the pool, or nil while it is
// still running. Unlike Wait it does not block: callers woken by Done
// use it to learn why (fail sets err before closing done, so the read
// is ordered).
func (s *Scheduler) Err() error {
	select {
	case <-s.done:
		return s.err
	default:
		return nil
	}
}

// Stop cancels the pool cooperatively: pending units are dropped,
// in-flight translator runs are interrupted through Done, and Wait
// returns ErrStopped (unless a unit failure already won the race).
func (s *Scheduler) Stop() { s.fail(ErrStopped) }

// Stopped reports whether the pool is cancelling — by Stop or by a
// failure. Units use it to cut retry loops short.
func (s *Scheduler) Stopped() bool {
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

// Go schedules a unit that does not need its worker id.
func (s *Scheduler) Go(f func() error) {
	s.GoW(func(int) error { return f() })
}

// GoW schedules a unit, passing it the id of the pool slot it runs on.
// Units scheduled after a failure, or still waiting for a slot when one
// happens, are dropped.
func (s *Scheduler) GoW(f func(worker int) error) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		var id int
		select {
		case id = <-s.ids:
		case <-s.done:
			return
		}
		defer func() { s.ids <- id }()
		select {
		case <-s.done:
			return
		default:
		}
		if err := s.protect(f, id); err != nil {
			s.fail(err)
		}
	}()
}

// protect is the pool's panic backstop: a panic that escapes a unit —
// the study's own unit wrappers convert expected panics to recorded
// failures first, so anything arriving here is a defect — becomes the
// scheduler's first error instead of crashing the process, and the
// other workers drain normally.
func (s *Scheduler) protect(f func(int) error, id int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: unit panicked: %v", r)
		}
	}()
	return f(id)
}

// Wait blocks until every scheduled unit has finished (or been dropped
// by a failure) and returns the first error, if any.
func (s *Scheduler) Wait() error {
	s.wg.Wait()
	return s.err
}
