// Run-level work scheduler: the study pipeline is decomposed into
// independent units — per-benchmark reference runs, training runs and
// per-threshold comparisons — scheduled over one shared bounded worker
// pool, with fail-fast cancellation so one failing benchmark stops the
// rest instead of letting them run to completion first.
package core

import (
	"runtime"
	"sync"
)

// Scheduler is a bounded worker pool with first-error fail-fast. Units
// are scheduled with Go/GoW — including from inside a running unit,
// which is how dependent stages (e.g. the per-threshold comparisons
// that need the AVEP snapshot) are spawned without ever blocking a pool
// slot on an unfinished dependency.
//
// Pool slots carry stable ids in [0, Workers): a unit learns which slot
// it occupies (GoW), which is what lets the observability layer plot
// worker occupancy from the flight-recorder events.
type Scheduler struct {
	ids     chan int
	workers int
	done    chan struct{}
	once    sync.Once
	err     error
	wg      sync.WaitGroup
}

// NewScheduler returns a scheduler running at most workers units
// concurrently. The default (workers <= 0) is GOMAXPROCS, which —
// unlike NumCPU — respects cgroup quotas and GOMAXPROCS overrides.
func NewScheduler(workers int) *Scheduler {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ids := make(chan int, workers)
	for i := 0; i < workers; i++ {
		ids <- i
	}
	return &Scheduler{
		ids:     ids,
		workers: workers,
		done:    make(chan struct{}),
	}
}

// Workers reports the resolved pool size — the number the scheduler
// actually runs with, not the possibly-zero value it was asked for.
func (s *Scheduler) Workers() int { return s.workers }

// Done returns a channel closed when the scheduler has failed. Units
// pass it to dbt.Config.Interrupt so in-flight translator runs stop
// promptly instead of running the guest to completion.
func (s *Scheduler) Done() <-chan struct{} { return s.done }

// fail records the first error and cancels the pool.
func (s *Scheduler) fail(err error) {
	s.once.Do(func() {
		s.err = err
		close(s.done)
	})
}

// Go schedules a unit that does not need its worker id.
func (s *Scheduler) Go(f func() error) {
	s.GoW(func(int) error { return f() })
}

// GoW schedules a unit, passing it the id of the pool slot it runs on.
// Units scheduled after a failure, or still waiting for a slot when one
// happens, are dropped.
func (s *Scheduler) GoW(f func(worker int) error) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		var id int
		select {
		case id = <-s.ids:
		case <-s.done:
			return
		}
		defer func() { s.ids <- id }()
		select {
		case <-s.done:
			return
		default:
		}
		if err := f(id); err != nil {
			s.fail(err)
		}
	}()
}

// Wait blocks until every scheduled unit has finished (or been dropped
// by a failure) and returns the first error, if any.
func (s *Scheduler) Wait() error {
	s.wg.Wait()
	return s.err
}
