// Package markov implements the "Markov Modelling of Control Flow"
// frequency-propagation method (Wagner et al., PLDI'94) that the paper
// uses to recover block frequencies for duplicated blocks when the
// average profile is normalized to the initial profile's CFG.
//
// The caller describes a set of nodes (block copies) and, for each,
// exactly one of three kinds of knowledge:
//
//   - Pin: the node's frequency is known (a non-duplicated block whose
//     frequency comes straight from AVEP);
//   - Inflow: the node's frequency equals the probability-weighted sum
//     of its incoming edges (an interior copy of a region);
//   - Remainder: the node absorbs whatever is left of a known total
//     after the other copies of the same original block are accounted
//     for (a region entry whose original block was duplicated).
//
// Solve assembles the corresponding linear system — frequencies of
// non-duplicated blocks as constant coefficients, duplicated-block
// frequencies as unknowns — and solves it with the linalg package.
package markov

import (
	"fmt"

	"repro/internal/linalg"
)

type eqKind int

const (
	eqUnset eqKind = iota
	eqPin
	eqInflow
	eqRemainder
)

type node struct {
	name  string
	kind  eqKind
	pin   float64
	total float64 // remainder: group total
	group []int   // remainder: the other nodes in the group
}

type edge struct {
	dst, src int
	prob     float64
}

// System is a flow-conservation system under construction.
type System struct {
	nodes []node
	edges []edge
}

// NewSystem returns an empty system.
func NewSystem() *System {
	return &System{}
}

// AddNode registers a node and returns its index. The name is used only
// in error messages.
func (s *System) AddNode(name string) int {
	s.nodes = append(s.nodes, node{name: name})
	return len(s.nodes) - 1
}

// Len returns the number of nodes.
func (s *System) Len() int { return len(s.nodes) }

func (s *System) setKind(id int, k eqKind) error {
	if id < 0 || id >= len(s.nodes) {
		return fmt.Errorf("markov: node %d out of range", id)
	}
	if s.nodes[id].kind != eqUnset {
		return fmt.Errorf("markov: node %q already constrained", s.nodes[id].name)
	}
	s.nodes[id].kind = k
	return nil
}

// Pin fixes the node's frequency to a known value.
func (s *System) Pin(id int, freq float64) error {
	if err := s.setKind(id, eqPin); err != nil {
		return err
	}
	s.nodes[id].pin = freq
	return nil
}

// Inflow declares that the node's frequency is the sum of its incoming
// AddEdge flows.
func (s *System) Inflow(id int) error {
	return s.setKind(id, eqInflow)
}

// Remainder declares that the node's frequency is total minus the sum of
// the frequencies of the other nodes in its duplication group.
func (s *System) Remainder(id int, total float64, others []int) error {
	if err := s.setKind(id, eqRemainder); err != nil {
		return err
	}
	s.nodes[id].total = total
	s.nodes[id].group = append([]int(nil), others...)
	return nil
}

// AddEdge records flow prob*freq(src) into dst. Edges into Pin or
// Remainder nodes are permitted and ignored by those equations (their
// frequency is determined by other knowledge).
func (s *System) AddEdge(dst, src int, prob float64) error {
	if dst < 0 || dst >= len(s.nodes) || src < 0 || src >= len(s.nodes) {
		return fmt.Errorf("markov: edge %d<-%d out of range", dst, src)
	}
	if prob < 0 {
		return fmt.Errorf("markov: negative edge probability %v", prob)
	}
	s.edges = append(s.edges, edge{dst: dst, src: src, prob: prob})
	return nil
}

// Solve computes all node frequencies. Every node must have been
// constrained with exactly one of Pin, Inflow or Remainder.
func (s *System) Solve() ([]float64, error) {
	n := len(s.nodes)
	if n == 0 {
		return nil, nil
	}
	a := linalg.NewSparse(n)
	b := make([]float64, n)
	for i, nd := range s.nodes {
		switch nd.kind {
		case eqPin:
			a.Add(i, i, 1)
			b[i] = nd.pin
		case eqInflow:
			a.Add(i, i, 1)
			// Edge terms are subtracted below.
		case eqRemainder:
			a.Add(i, i, 1)
			for _, j := range nd.group {
				if j == i {
					continue
				}
				a.Add(i, j, 1)
			}
			b[i] = nd.total
		default:
			return nil, fmt.Errorf("markov: node %q has no equation", nd.name)
		}
	}
	for _, e := range s.edges {
		if s.nodes[e.dst].kind != eqInflow {
			continue
		}
		a.Add(e.dst, e.src, -e.prob)
	}
	x, err := linalg.SolveFlow(a, b)
	if err != nil {
		return nil, fmt.Errorf("markov: %w", err)
	}
	// Frequencies are physically non-negative; clamp the tiny negative
	// values that the remainder approximation can produce.
	for i, v := range x {
		if v < 0 {
			x[i] = 0
		}
	}
	return x, nil
}
