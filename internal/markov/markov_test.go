package markov

import (
	"math"
	"testing"
)

func TestPaperFigure4Propagation(t *testing.T) {
	// The paper's Figure 4: blocks b1 (1000), b3 (6000), b4 (44000) are
	// not duplicated; block b2 has three copies:
	//   b2a fed by b1 with probability 1 (trace region entry edge),
	//   b2b fed by b4's back edge with probability 0.9 (inner loop),
	//   b2c fed by b3's back edge with probability... chosen so the
	// copies sum to 50000: the figure shows 1000 + 43000 + 6000.
	sys := NewSystem()
	b1 := sys.AddNode("b1")
	b3 := sys.AddNode("b3")
	b4 := sys.AddNode("b4")
	b2a := sys.AddNode("b2a")
	b2b := sys.AddNode("b2b")
	b2c := sys.AddNode("b2c")
	if err := sys.Pin(b1, 1000); err != nil {
		t.Fatal(err)
	}
	if err := sys.Pin(b3, 6000); err != nil {
		t.Fatal(err)
	}
	if err := sys.Pin(b4, 44000); err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{b2a, b2b, b2c} {
		if err := sys.Inflow(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.AddEdge(b2a, b1, 1.0); err != nil {
		t.Fatal(err)
	}
	// Inner loop back edge: 44000 * (43000/44000) lands on b2b.
	if err := sys.AddEdge(b2b, b4, 43000.0/44000.0); err != nil {
		t.Fatal(err)
	}
	// Outer loop back edge: all of b3 returns to b2c.
	if err := sys.AddEdge(b2c, b3, 1.0); err != nil {
		t.Fatal(err)
	}
	x, err := sys.Solve()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1000, 6000, 44000, 1000, 43000, 6000}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-6 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
	// The copies of b2 sum to the AVEP frequency of b2 (50000), as the
	// paper requires.
	if sum := x[b2a] + x[b2b] + x[b2c]; math.Abs(sum-50000) > 1e-6 {
		t.Fatalf("b2 copies sum to %v, want 50000", sum)
	}
}

func TestChainedUnknowns(t *testing.T) {
	// copy2 depends on copy1 which depends on a pinned node: the linear
	// system must propagate through the chain.
	sys := NewSystem()
	p := sys.AddNode("pinned")
	c1 := sys.AddNode("c1")
	c2 := sys.AddNode("c2")
	if err := sys.Pin(p, 100); err != nil {
		t.Fatal(err)
	}
	if err := sys.Inflow(c1); err != nil {
		t.Fatal(err)
	}
	if err := sys.Inflow(c2); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddEdge(c1, p, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddEdge(c2, c1, 0.8); err != nil {
		t.Fatal(err)
	}
	x, err := sys.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[c1]-50) > 1e-9 || math.Abs(x[c2]-40) > 1e-9 {
		t.Fatalf("x = %v, want [100 50 40]", x)
	}
}

func TestRemainderEquation(t *testing.T) {
	// Entry copy absorbs the AVEP total minus the interior copies.
	sys := NewSystem()
	p := sys.AddNode("pinned")
	interior := sys.AddNode("interior")
	entry := sys.AddNode("entry")
	if err := sys.Pin(p, 1000); err != nil {
		t.Fatal(err)
	}
	if err := sys.Inflow(interior); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddEdge(interior, p, 0.3); err != nil {
		t.Fatal(err)
	}
	if err := sys.Remainder(entry, 5000, []int{interior}); err != nil {
		t.Fatal(err)
	}
	x, err := sys.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[interior]-300) > 1e-9 {
		t.Fatalf("interior = %v, want 300", x[interior])
	}
	if math.Abs(x[entry]-4700) > 1e-9 {
		t.Fatalf("entry = %v, want 4700", x[entry])
	}
}

func TestRemainderClampsNegative(t *testing.T) {
	// If interior copies already exceed the total (an artefact of the
	// approximation), the remainder clamps at zero instead of going
	// negative.
	sys := NewSystem()
	p := sys.AddNode("pinned")
	interior := sys.AddNode("interior")
	entry := sys.AddNode("entry")
	if err := sys.Pin(p, 1000); err != nil {
		t.Fatal(err)
	}
	if err := sys.Inflow(interior); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddEdge(interior, p, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := sys.Remainder(entry, 500, []int{interior}); err != nil {
		t.Fatal(err)
	}
	x, err := sys.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if x[entry] != 0 {
		t.Fatalf("entry = %v, want clamped 0", x[entry])
	}
}

func TestCyclicUnknowns(t *testing.T) {
	// Two copies feeding each other plus an external source: a genuine
	// linear system (not just forward substitution).
	//   x = 100 + 0.5*y
	//   y = 0.5*x
	// => x = 100 + 0.25x => x = 133.33, y = 66.67.
	sys := NewSystem()
	src := sys.AddNode("src")
	x := sys.AddNode("x")
	y := sys.AddNode("y")
	if err := sys.Pin(src, 200); err != nil {
		t.Fatal(err)
	}
	if err := sys.Inflow(x); err != nil {
		t.Fatal(err)
	}
	if err := sys.Inflow(y); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddEdge(x, src, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddEdge(x, y, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddEdge(y, x, 0.5); err != nil {
		t.Fatal(err)
	}
	got, err := sys.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[x]-400.0/3) > 1e-9 || math.Abs(got[y]-200.0/3) > 1e-9 {
		t.Fatalf("x, y = %v, %v; want 133.33, 66.67", got[x], got[y])
	}
}

func TestErrors(t *testing.T) {
	sys := NewSystem()
	n := sys.AddNode("n")
	if err := sys.Pin(99, 1); err == nil {
		t.Fatal("Pin out of range accepted")
	}
	if err := sys.Pin(n, 1); err != nil {
		t.Fatal(err)
	}
	if err := sys.Pin(n, 2); err == nil {
		t.Fatal("double constraint accepted")
	}
	if err := sys.AddEdge(0, 5, 1); err == nil {
		t.Fatal("bad edge accepted")
	}
	if err := sys.AddEdge(0, 0, -1); err == nil {
		t.Fatal("negative probability accepted")
	}
	sys2 := NewSystem()
	sys2.AddNode("unconstrained")
	if _, err := sys2.Solve(); err == nil {
		t.Fatal("Solve accepted unconstrained node")
	}
}

func TestEmptySystem(t *testing.T) {
	x, err := NewSystem().Solve()
	if err != nil || x != nil {
		t.Fatalf("empty system: %v, %v", x, err)
	}
}
