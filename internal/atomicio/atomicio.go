// Package atomicio provides crash-safe file writes: data lands in a
// temporary file in the destination directory and is renamed into place
// only when complete, so an interrupted run can truncate at worst the
// temporary — never a published artifact. The study pipeline uses it
// for every on-disk output a consumer might parse (benchmark records,
// flight-recorder traces, checkpoints, reports).
package atomicio

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// WriteFile atomically replaces path with data: write to a temp file in
// the same directory, fsync, rename. On error the destination is left
// untouched (either the old content or absent).
func WriteFile(path string, data []byte, perm os.FileMode) error {
	f, err := Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Chmod(perm); err != nil {
		f.Close()
		return err
	}
	return f.Commit()
}

// File is an in-progress atomic write: an ordinary *os.File open on a
// temporary in the destination's directory. Commit publishes it under
// the final name; Close without Commit discards it.
type File struct {
	*os.File
	path      string
	committed bool
}

// Create starts an atomic write of path.
func Create(path string) (*File, error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return nil, fmt.Errorf("atomicio: %w", err)
	}
	return &File{File: tmp, path: path}, nil
}

// Commit flushes the temporary to stable storage and renames it over
// the destination. After Commit (successful or not) the File is closed.
func (f *File) Commit() error {
	if f.committed {
		return fmt.Errorf("atomicio: %s already committed", f.path)
	}
	f.committed = true
	if err := f.Sync(); err != nil {
		f.discard()
		return fmt.Errorf("atomicio: sync %s: %w", f.path, err)
	}
	if err := f.File.Close(); err != nil {
		os.Remove(f.Name())
		return fmt.Errorf("atomicio: close %s: %w", f.path, err)
	}
	if err := os.Rename(f.Name(), f.path); err != nil {
		os.Remove(f.Name())
		return fmt.Errorf("atomicio: publish %s: %w", f.path, err)
	}
	return nil
}

// Close discards the write unless Commit already published it. It is
// safe to defer alongside Commit.
func (f *File) Close() error {
	if f.committed {
		return nil
	}
	f.committed = true
	f.discard()
	return nil
}

func (f *File) discard() {
	f.File.Close()
	os.Remove(f.Name())
}

// isTempName reports whether a directory entry looks like one of
// Create's in-progress temporaries: ".<base>.tmp<random>". The pattern
// is deliberately anchored on both the leading dot and the ".tmp"
// infix so ordinary dotfiles are never swept.
func isTempName(name string) bool {
	return strings.HasPrefix(name, ".") && strings.Contains(name, ".tmp")
}

// SweepTemps removes every stale atomic-write temporary in dir and
// reports how many were removed. A process killed between Create and
// Commit (e.g. a SIGINT landing mid-publication) orphans its temp file
// next to the destination; startup is the one moment a sweep is safe,
// because no write of this process can be in flight yet. Callers that
// share the directory with other live writers should use SweepTempsFor
// instead. A missing directory is not an error (nothing to sweep).
func SweepTemps(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("atomicio: sweep %s: %w", dir, err)
	}
	removed := 0
	for _, e := range entries {
		if e.IsDir() || !isTempName(e.Name()) {
			continue
		}
		if err := os.Remove(filepath.Join(dir, e.Name())); err == nil {
			removed++
		}
	}
	return removed, nil
}

// SweepTempsFor removes stale temporaries of one specific destination
// path ("<dir>/.<base>.tmp*"), leaving every other file — including
// other targets' in-flight temporaries — untouched. Use it when the
// directory is shared with concurrent writers (e.g. per-job checkpoint
// files in a common state directory).
func SweepTempsFor(path string) (int, error) {
	dir := filepath.Dir(path)
	prefix := "." + filepath.Base(path) + ".tmp"
	entries, err := os.ReadDir(dir)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("atomicio: sweep %s: %w", path, err)
	}
	removed := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), prefix) {
			continue
		}
		if err := os.Remove(filepath.Join(dir, e.Name())); err == nil {
			removed++
		}
	}
	return removed, nil
}
