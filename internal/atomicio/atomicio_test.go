package atomicio

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := WriteFile(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("v2"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2" {
		t.Fatalf("content = %q", got)
	}
	leftovers(t, filepath.Dir(path), "out.json")
}

func TestAbortedWriteLeavesOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("partial garbage")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil { // no Commit: simulated crash/abort
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "old" {
		t.Fatalf("aborted write replaced content: %q", got)
	}
	leftovers(t, dir, "out.json")
}

func TestCommitThenCloseIsSafe(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("done")); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "done" {
		t.Fatalf("content = %q", got)
	}
	if err := f.Commit(); err == nil {
		t.Fatal("double Commit accepted")
	}
	leftovers(t, dir, "out.txt")
}

func TestCreateInMissingDirFails(t *testing.T) {
	if _, err := Create(filepath.Join(t.TempDir(), "nodir", "x")); err == nil {
		t.Fatal("Create in a missing directory succeeded")
	}
}

// leftovers fails the test if the directory holds anything besides the
// published artifacts.
func leftovers(t *testing.T, dir string, want ...string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	ok := map[string]bool{}
	for _, w := range want {
		ok[w] = true
	}
	for _, e := range ents {
		if !ok[e.Name()] {
			if strings.Contains(e.Name(), ".tmp") {
				t.Fatalf("temp file leaked: %s", e.Name())
			}
			t.Fatalf("unexpected file: %s", e.Name())
		}
	}
}
