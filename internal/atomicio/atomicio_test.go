package atomicio

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := WriteFile(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("v2"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2" {
		t.Fatalf("content = %q", got)
	}
	leftovers(t, filepath.Dir(path), "out.json")
}

func TestAbortedWriteLeavesOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("partial garbage")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil { // no Commit: simulated crash/abort
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "old" {
		t.Fatalf("aborted write replaced content: %q", got)
	}
	leftovers(t, dir, "out.json")
}

func TestCommitThenCloseIsSafe(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("done")); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "done" {
		t.Fatalf("content = %q", got)
	}
	if err := f.Commit(); err == nil {
		t.Fatal("double Commit accepted")
	}
	leftovers(t, dir, "out.txt")
}

func TestCreateInMissingDirFails(t *testing.T) {
	if _, err := Create(filepath.Join(t.TempDir(), "nodir", "x")); err == nil {
		t.Fatal("Create in a missing directory succeeded")
	}
}

// orphan plants a stale temp file the way a kill between Create and
// Commit would leave one.
func orphan(t *testing.T, dir, base string) string {
	t.Helper()
	f, err := Create(filepath.Join(dir, base))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("torn")); err != nil {
		t.Fatal(err)
	}
	name := f.Name()
	// Simulated crash: the *os.File is abandoned without Close/Commit.
	f.File.Close()
	return filepath.Base(name)
}

// TestSweepTemps: stale temporaries are removed, published artifacts
// and ordinary dotfiles are not, and a missing directory is a no-op.
func TestSweepTemps(t *testing.T) {
	dir := t.TempDir()
	if err := WriteFile(filepath.Join(dir, "keep.json"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ".dotfile"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	orphan(t, dir, "keep.json")
	orphan(t, dir, "other.jsonl")
	n, err := SweepTemps(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("swept %d temps, want 2", n)
	}
	leftovers(t, dir, "keep.json", ".dotfile")
	if n, err := SweepTemps(filepath.Join(dir, "gone")); n != 0 || err != nil {
		t.Fatalf("missing dir sweep = (%d, %v), want (0, nil)", n, err)
	}
}

// TestSweepTempsFor only removes the named target's temporaries: other
// targets in a shared directory may have writes in flight.
func TestSweepTempsFor(t *testing.T) {
	dir := t.TempDir()
	orphan(t, dir, "job-a.ckpt")
	other := orphan(t, dir, "job-b.ckpt")
	n, err := SweepTempsFor(filepath.Join(dir, "job-a.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("swept %d temps, want 1", n)
	}
	leftovers(t, dir, other)
	if n, _ := SweepTempsFor(filepath.Join(dir, "gone", "x")); n != 0 {
		t.Fatalf("missing dir sweep removed %d", n)
	}
}

// leftovers fails the test if the directory holds anything besides the
// published artifacts.
func leftovers(t *testing.T, dir string, want ...string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	ok := map[string]bool{}
	for _, w := range want {
		ok[w] = true
	}
	for _, e := range ents {
		if !ok[e.Name()] {
			if strings.Contains(e.Name(), ".tmp") {
				t.Fatalf("temp file leaked: %s", e.Name())
			}
			t.Fatalf("unexpected file: %s", e.Name())
		}
	}
}
