package predict

import (
	"reflect"
	"testing"
)

func TestNewKnowsEveryRegisteredName(t *testing.T) {
	for _, name := range Names() {
		p, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := New("oracle"); err == nil {
		t.Fatal("New(oracle) succeeded for an unregistered predictor")
	}
}

func TestParseList(t *testing.T) {
	cases := []struct {
		in   string
		want []string
		ok   bool
	}{
		{"", nil, true},
		{"all", Names(), true},
		{"*", Names(), true},
		{"2bit,gshare", []string{"2bit", "gshare"}, true},
		{"gshare, 2bit", []string{"gshare", "2bit"}, true}, // order preserved, spaces trimmed
		{"2bit,2bit", nil, false},
		{"2bit,,gshare", nil, false},
		{"nope", nil, false},
	}
	for _, c := range cases {
		got, err := ParseList(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseList(%q): err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseList(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// replay drives one predictor over a single-branch stream and returns
// its mispredict count.
func replay(p Predictor, pc int32, outcomes []bool) uint64 {
	var mis uint64
	for _, taken := range outcomes {
		if p.Predict(pc) != taken {
			mis++
		}
		p.Update(pc, taken)
	}
	return mis
}

func pattern(n int, f func(i int) bool) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = f(i)
	}
	return out
}

func TestStaticPredictors(t *testing.T) {
	stream := pattern(100, func(i int) bool { return i%4 != 0 }) // 75% taken
	taken, _ := New("taken")
	notTaken, _ := New("nottaken")
	if mis := replay(taken, 8, stream); mis != 25 {
		t.Errorf("always-taken mispredicts = %d, want 25", mis)
	}
	if mis := replay(notTaken, 8, stream); mis != 75 {
		t.Errorf("always-not-taken mispredicts = %d, want 75", mis)
	}
}

func TestOneBitFollowsLastDirection(t *testing.T) {
	p, _ := New("1bit")
	// Alternating stream: the 1-bit scheme mispredicts every branch
	// after warmup (it always predicts the previous direction).
	stream := pattern(40, func(i int) bool { return i%2 == 0 })
	// First branch: table starts not-taken, actual taken → mispredict;
	// from then on each prediction equals the previous (opposite)
	// outcome, so all 40 miss.
	if mis := replay(p, 8, stream); mis != 40 {
		t.Errorf("1bit on alternating stream: %d mispredicts, want 40", mis)
	}
}

func TestTwoBitHysteresis(t *testing.T) {
	p, _ := New("2bit")
	pc := int32(8)
	// Saturate taken.
	for i := 0; i < 4; i++ {
		p.Update(pc, true)
	}
	// A single not-taken outcome must not flip a saturated counter...
	p.Update(pc, false)
	if !p.Predict(pc) {
		t.Fatal("2bit flipped after one off-direction outcome")
	}
	// ...but two must.
	p.Update(pc, false)
	if p.Predict(pc) {
		t.Fatal("2bit still predicts taken after two not-taken outcomes")
	}
}

func TestTwoBitBeatsOneBitOnBiasedStream(t *testing.T) {
	// 90% taken with isolated not-taken glitches: the 1-bit scheme pays
	// two mispredicts per glitch, the 2-bit scheme one.
	stream := pattern(200, func(i int) bool { return i%10 != 0 })
	one, _ := New("1bit")
	two, _ := New("2bit")
	m1 := replay(one, 8, stream)
	m2 := replay(two, 8, stream)
	if m2 >= m1 {
		t.Errorf("2bit (%d) should beat 1bit (%d) on a glitchy biased stream", m2, m1)
	}
}

func TestGShareLearnsHistoryCorrelation(t *testing.T) {
	// A strict period-2 pattern is fully determined by the last
	// outcome: with history in the index, gshare trains separate
	// counters for the two contexts and converges to zero steady-state
	// mispredicts, while a per-address 2-bit counter stays wrong half
	// the time.
	stream := pattern(400, func(i int) bool { return i%2 == 0 })
	g, _ := New("gshare")
	two, _ := New("2bit")
	mg := replay(g, 8, stream)
	m2 := replay(two, 8, stream)
	if mg > 20 {
		t.Errorf("gshare mispredicted %d of 400 on a period-2 pattern; want warmup only", mg)
	}
	if mg >= m2 {
		t.Errorf("gshare (%d) should beat 2bit (%d) on a history-correlated stream", mg, m2)
	}
}

func TestPerceptronLearnsLongPeriod(t *testing.T) {
	// Period-7 patterns exceed gshare's effective reach at this table
	// size less than they exercise the perceptron's per-bit weights;
	// the perceptron must converge to near-zero steady state.
	stream := pattern(2100, func(i int) bool { return i%7 < 3 })
	p, _ := New("perceptron")
	mp := replay(p, 8, stream)
	if mp > 200 {
		t.Errorf("perceptron mispredicted %d of 2100 on a period-7 pattern", mp)
	}
}

func TestPerceptronWeightsSaturate(t *testing.T) {
	p := newPerceptron()
	for i := 0; i < 10000; i++ {
		p.Update(8, true)
	}
	for r := range p.weights {
		for i, w := range p.weights[r] {
			if w > percWMax || w < percWMin {
				t.Fatalf("weight[%d][%d] = %d outside [%d, %d]", r, i, w, percWMin, percWMax)
			}
		}
	}
	if !p.Predict(8) {
		t.Fatal("perceptron predicts not-taken after training always-taken")
	}
}

// Perceptron boundary pins. The training rule is: train on a
// mispredict, or while |output| <= theta (inclusive). The weight clamp
// is the int8 range [-128, 127] exactly. These tests construct exact
// boundary outputs by hand — history is all-zeros, so every history
// weight contributes its negation and the bias contributes itself.

// outputAt sets up a perceptron whose dot product for pc 8 is exactly
// the given bias minus the first history weight.
func percWith(bias, w1 int16) *perceptron {
	p := newPerceptron()
	p.weights[8][0] = bias
	p.weights[8][1] = w1
	return p
}

func TestPerceptronTrainsAtExactlyTheta(t *testing.T) {
	// output = theta exactly, prediction correct: the inclusive rule
	// still trains (the strict form stopped one update early here).
	p := percWith(percTheta, 0)
	if got := p.output(8); got != percTheta {
		t.Fatalf("constructed output = %d, want %d", got, percTheta)
	}
	p.Update(8, true)
	if w := p.weights[8][0]; w != percTheta+1 {
		t.Fatalf("bias after correct prediction at |output|==theta: %d, want %d (must train)", w, percTheta+1)
	}
	if !p.Predict(8) {
		t.Fatal("prediction flipped by an on-edge training update")
	}
}

func TestPerceptronStopsTrainingPastTheta(t *testing.T) {
	// output = theta+1, prediction correct: confidence has cleared the
	// threshold, no update.
	p := percWith(percTheta+1, 0)
	p.Update(8, true)
	if w := p.weights[8][0]; w != percTheta+1 {
		t.Fatalf("bias after correct prediction past theta: %d, want unchanged %d", w, percTheta+1)
	}
}

func TestPerceptronTrainsAtExactlyMinusTheta(t *testing.T) {
	p := percWith(-percTheta, 0)
	if got := p.output(8); got != -percTheta {
		t.Fatalf("constructed output = %d, want %d", got, -percTheta)
	}
	p.Update(8, false)
	if w := p.weights[8][0]; w != -percTheta-1 {
		t.Fatalf("bias after correct prediction at -theta: %d, want %d (must train)", w, -percTheta-1)
	}
}

func TestPerceptronClampAtExactlyMax(t *testing.T) {
	// Bias saturated at +127; the history weight drags the output back
	// inside theta so the update rule fires. The agreeing bump must hold
	// at the clamp, never wrap.
	p := percWith(percWMax, 100)
	if got := p.output(8); got != percWMax-100 {
		t.Fatalf("constructed output = %d", got)
	}
	p.Update(8, true)
	if w := p.weights[8][0]; w != percWMax {
		t.Fatalf("saturated bias moved to %d, want clamped %d", w, percWMax)
	}
	// The disagreeing history weight still decrements normally.
	if w := p.weights[8][1]; w != 99 {
		t.Fatalf("history weight = %d, want 99", w)
	}
}

func TestPerceptronClampAtExactlyMin(t *testing.T) {
	p := percWith(percWMin, -100)
	if got := p.output(8); got != percWMin+100 {
		t.Fatalf("constructed output = %d", got)
	}
	p.Update(8, false)
	if w := p.weights[8][0]; w != percWMin {
		t.Fatalf("saturated bias moved to %d, want clamped %d", w, percWMin)
	}
	if w := p.weights[8][1]; w != -99 {
		t.Fatalf("history weight = %d, want -99", w)
	}
}

func TestSuiteRecordCountsPerPredictor(t *testing.T) {
	s, err := NewSuite([]string{"taken", "nottaken"})
	if err != nil {
		t.Fatal(err)
	}
	s.Record(8, true)
	s.Record(8, true)
	s.Record(8, false)
	res := s.Results()
	want := []Result{
		{Predictor: "taken", Branches: 3, Mispredicts: 1},
		{Predictor: "nottaken", Branches: 3, Mispredicts: 2},
	}
	if !reflect.DeepEqual(res, want) {
		t.Fatalf("Results() = %+v, want %+v", res, want)
	}
	if got := res[0].MispredictRate(); got != 1.0/3.0 {
		t.Errorf("MispredictRate = %v", got)
	}
	if got := (Result{}).MispredictRate(); got != 0 {
		t.Errorf("empty-stream MispredictRate = %v, want 0", got)
	}
	// Results must be a copy, not an alias into the live tallies.
	s.Record(8, true)
	if res[0].Branches != 3 {
		t.Fatal("Results() aliases the suite's live tallies")
	}
}

func TestSuiteRejectsUnknown(t *testing.T) {
	if _, err := NewSuite([]string{"taken", "bogus"}); err == nil {
		t.Fatal("NewSuite accepted an unknown predictor")
	}
}
