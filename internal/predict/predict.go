// Package predict implements classic dynamic branch predictors over the
// DBT's replayed block trace. The paper ranks the initial profile
// INIP(T) only against AVEP and the training profile; this package adds
// the axis the branch-predictability literature uses: what would a
// hardware-style dynamic predictor achieve on the very same branch
// stream?
//
// Every predictor is a pure, deterministic state machine behind one
// interface — Predict(pc) then Update(pc, taken), called once per
// resolved conditional branch in architectural order. Predictors are
// driven from the shared reference trace (dbt.RunMultiObserved), so the
// guest still executes exactly once and the predictor pass perturbs no
// profiling counter: mispredict counts are a pure function of the
// branch stream, identical across worker counts and dispatch paths.
package predict

import (
	"fmt"
	"strings"
)

// Predictor is one dynamic branch predictor. For each resolved
// conditional branch the driver calls Predict then Update, in
// architectural order; pc is the branch block's entry address.
// Implementations must be deterministic: equal call sequences must
// yield equal predictions.
type Predictor interface {
	// Name returns the registry name the predictor was created under.
	Name() string
	// Predict returns the predicted direction of the branch at pc.
	Predict(pc int32) bool
	// Update trains the predictor with the branch's actual direction.
	Update(pc int32, taken bool)
}

// Names lists every registered predictor in canonical order; figure
// columns and cache keys follow it when the caller asks for "all".
func Names() []string {
	return []string{"taken", "nottaken", "1bit", "2bit", "gshare", "perceptron"}
}

// New returns a fresh predictor of the named kind.
func New(name string) (Predictor, error) {
	switch name {
	case "taken":
		return staticPredictor{name: "taken", dir: true}, nil
	case "nottaken":
		return staticPredictor{name: "nottaken", dir: false}, nil
	case "1bit":
		return &oneBit{}, nil
	case "2bit":
		return newTwoBit(), nil
	case "gshare":
		return newGShare(), nil
	case "perceptron":
		return newPerceptron(), nil
	}
	return nil, fmt.Errorf("predict: unknown predictor %q (have %s)", name, strings.Join(Names(), ", "))
}

// ParseList parses a comma-separated predictor selection. "all" (or
// "*") expands to every registered predictor in canonical order.
// Order is preserved, duplicates are rejected: the list is part of
// figure-column identity and cache keys.
func ParseList(s string) ([]string, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	if s == "all" || s == "*" {
		return Names(), nil
	}
	var out []string
	seen := make(map[string]bool)
	for _, f := range strings.Split(s, ",") {
		name := strings.TrimSpace(f)
		if name == "" {
			return nil, fmt.Errorf("predict: empty predictor name in %q", s)
		}
		if _, err := New(name); err != nil {
			return nil, err
		}
		if seen[name] {
			return nil, fmt.Errorf("predict: predictor %q selected twice", name)
		}
		seen[name] = true
		out = append(out, name)
	}
	return out, nil
}

// Result is one predictor's accuracy over a branch stream.
type Result struct {
	Predictor   string `json:"predictor"`
	Branches    uint64 `json:"branches"`
	Mispredicts uint64 `json:"mispredicts"`
}

// MispredictRate is Mispredicts/Branches (0 on an empty stream).
func (r Result) MispredictRate() float64 {
	if r.Branches == 0 {
		return 0
	}
	return float64(r.Mispredicts) / float64(r.Branches)
}

// Suite drives a set of predictors over one branch stream and counts
// each one's mispredictions. Not safe for concurrent use: the stream
// is architectural order, which is inherently serial.
type Suite struct {
	preds []Predictor
	res   []Result
}

// NewSuite builds one fresh predictor per name.
func NewSuite(names []string) (*Suite, error) {
	s := &Suite{
		preds: make([]Predictor, len(names)),
		res:   make([]Result, len(names)),
	}
	for i, name := range names {
		p, err := New(name)
		if err != nil {
			return nil, err
		}
		s.preds[i] = p
		s.res[i] = Result{Predictor: name}
	}
	return s, nil
}

// Record feeds one resolved branch to every predictor.
func (s *Suite) Record(pc int32, taken bool) {
	for i, p := range s.preds {
		if p.Predict(pc) != taken {
			s.res[i].Mispredicts++
		}
		s.res[i].Branches++
		p.Update(pc, taken)
	}
}

// Results returns a copy of the per-predictor tallies, in suite order.
func (s *Suite) Results() []Result {
	return append([]Result(nil), s.res...)
}

// bhtBits sizes the per-address tables: 4096 entries, indexed by the
// low bits of the block address. Aliasing between far-apart branches
// is part of the model, exactly as in hardware.
const (
	bhtBits = 12
	bhtSize = 1 << bhtBits
	bhtMask = bhtSize - 1
)

func bhtIndex(pc int32) int { return int(uint32(pc)) & bhtMask }

// staticPredictor always predicts one direction (always-taken /
// always-not-taken). Its mispredict rate is the branch stream's
// direction bias, the baseline every dynamic scheme is measured
// against.
type staticPredictor struct {
	name string
	dir  bool
}

func (p staticPredictor) Name() string       { return p.name }
func (p staticPredictor) Predict(int32) bool { return p.dir }
func (p staticPredictor) Update(int32, bool) {}

// oneBit is the 1-bit last-direction scheme: each table entry predicts
// whatever its branch last did. Entries start not-taken.
type oneBit struct {
	table [bhtSize]bool
}

func (p *oneBit) Name() string { return "1bit" }
func (p *oneBit) Predict(pc int32) bool {
	return p.table[bhtIndex(pc)]
}
func (p *oneBit) Update(pc int32, taken bool) {
	p.table[bhtIndex(pc)] = taken
}

// twoBit is the 2-bit saturating-counter scheme: counters 0..3 predict
// taken at 2 and 3, and a single off-direction outcome cannot flip a
// saturated counter. Counters start weakly not-taken (1).
type twoBit struct {
	table [bhtSize]uint8
}

func newTwoBit() *twoBit {
	p := &twoBit{}
	for i := range p.table {
		p.table[i] = 1
	}
	return p
}

func (p *twoBit) Name() string { return "2bit" }
func (p *twoBit) Predict(pc int32) bool {
	return p.table[bhtIndex(pc)] >= 2
}
func (p *twoBit) Update(pc int32, taken bool) {
	i := bhtIndex(pc)
	if taken {
		if p.table[i] < 3 {
			p.table[i]++
		}
	} else if p.table[i] > 0 {
		p.table[i]--
	}
}

// gshare is the two-level global scheme: a global history register
// XORed with the branch address indexes a table of 2-bit saturating
// counters, so the same static branch trains separate counters per
// path context. History length equals the index width.
type gshare struct {
	hist  uint32
	table [bhtSize]uint8
}

func newGShare() *gshare {
	p := &gshare{}
	for i := range p.table {
		p.table[i] = 1
	}
	return p
}

func (p *gshare) Name() string { return "gshare" }

func (p *gshare) index(pc int32) int {
	return int((uint32(pc) ^ p.hist) & bhtMask)
}

func (p *gshare) Predict(pc int32) bool {
	return p.table[p.index(pc)] >= 2
}

func (p *gshare) Update(pc int32, taken bool) {
	i := p.index(pc)
	if taken {
		if p.table[i] < 3 {
			p.table[i]++
		}
	} else if p.table[i] > 0 {
		p.table[i]--
	}
	p.hist = (p.hist << 1) & bhtMask
	if taken {
		p.hist |= 1
	}
}

// Perceptron geometry: each of percRows rows holds a bias weight plus
// one weight per global-history bit. Weights are int8-saturated and
// training stops once the dot product clears percTheta, the usual
// floor(1.93*h + 14) threshold for h history bits.
const (
	percHistBits = 16
	percRows     = 512
	percRowMask  = percRows - 1
	percTheta    = 44
	percWMax     = 127
	percWMin     = -128
)

// perceptron is the perceptron predictor: predicted direction is the
// sign of bias + Σ weight[i]·history[i], with history bits as ±1.
type perceptron struct {
	hist    uint32 // low percHistBits bits, newest outcome in bit 0
	weights [percRows][percHistBits + 1]int16
}

func newPerceptron() *perceptron { return &perceptron{} }

func (p *perceptron) Name() string { return "perceptron" }

// output computes the dot product for pc under the current history.
func (p *perceptron) output(pc int32) int32 {
	w := &p.weights[int(uint32(pc))&percRowMask]
	sum := int32(w[0])
	h := p.hist
	for i := 1; i <= percHistBits; i++ {
		if h&1 != 0 {
			sum += int32(w[i])
		} else {
			sum -= int32(w[i])
		}
		h >>= 1
	}
	return sum
}

func (p *perceptron) Predict(pc int32) bool {
	return p.output(pc) >= 0
}

func (p *perceptron) Update(pc int32, taken bool) {
	// Predict and Update bracket one branch with no state change in
	// between, so recomputing the dot product here sees exactly the
	// value Predict used.
	sum := p.output(pc)
	pred := sum >= 0
	// Train on a mispredict or while |output| has not cleared theta.
	// The comparison is inclusive — |output| == theta still trains —
	// matching the published training rule (|y_out| <= theta); the
	// strict form quietly stopped one update early at the boundary.
	if pred != taken || sum <= percTheta && sum >= -percTheta {
		w := &p.weights[int(uint32(pc))&percRowMask]
		bump := func(i int, agree bool) {
			if agree {
				if w[i] < percWMax {
					w[i]++
				}
			} else if w[i] > percWMin {
				w[i]--
			}
		}
		bump(0, taken)
		h := p.hist
		for i := 1; i <= percHistBits; i++ {
			bump(i, (h&1 != 0) == taken)
			h >>= 1
		}
	}
	p.hist <<= 1
	if taken {
		p.hist |= 1
	}
	p.hist &= 1<<percHistBits - 1
}
