package predict_test

import (
	"reflect"
	"testing"

	"repro/internal/dbt"
	"repro/internal/predict"
	"repro/internal/spec"
)

// suiteObserver mirrors the adapter internal/core uses: one Record per
// resolved branch, in architectural order.
type suiteObserver struct{ suite *predict.Suite }

func (o suiteObserver) ObserveBranches(evs []dbt.BranchEvent) {
	for _, ev := range evs {
		o.suite.Record(ev.PC, ev.Taken)
	}
}

// observedRun executes one benchmark's reference input at the given
// scale with every registered predictor observing, and returns the
// tallies.
func observedRun(t *testing.T, b *spec.Benchmark, scale float64, cfg dbt.Config) []predict.Result {
	t.Helper()
	img, tape, err := b.Target(scale).Build("ref")
	if err != nil {
		t.Fatalf("%s: build: %v", b.Name, err)
	}
	suite, err := predict.NewSuite(predict.Names())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Input = "ref"
	_, _, err = dbt.RunMultiObserved(img, tape, []dbt.Config{cfg}, []dbt.TraceObserver{suiteObserver{suite}})
	if err != nil {
		t.Fatalf("%s: run: %v", b.Name, err)
	}
	return suite.Results()
}

// TestReplayDeterminismAcrossDispatchPaths pins the core determinism
// invariant of the predictor layer: the observed branch stream — and
// with it every predictor's mispredict count — is bit-identical
// between the pre-lowered fast path and the generic interp dispatch,
// across the full spec suite.
func TestReplayDeterminismAcrossDispatchPaths(t *testing.T) {
	const scale = 0.001
	for _, b := range spec.Suite() {
		fast := observedRun(t, b, scale, dbt.Config{})
		generic := observedRun(t, b, scale, dbt.Config{DisableFastPath: true})
		if !reflect.DeepEqual(fast, generic) {
			t.Errorf("%s: predictor tallies diverge between dispatch paths:\nfast:    %+v\ngeneric: %+v", b.Name, fast, generic)
		}
		if fast[0].Branches == 0 {
			t.Errorf("%s: observed no branches; the spec benchmarks all contain branch sites", b.Name)
		}
	}
}

// TestReplayIndependentOfFollowerCount pins that adding follower
// configurations (the shared-trace INIP ladder) does not change what
// observers see: the driver's trace is the only source.
func TestReplayIndependentOfFollowerCount(t *testing.T) {
	const scale = 0.001
	b := spec.ByName("gzip")
	if b == nil {
		t.Fatal("gzip missing from suite")
	}
	run := func(cfgs []dbt.Config) []predict.Result {
		// Tapes are stateful streams: build a fresh image+tape pair per
		// run so both runs replay the identical input.
		img, tape, err := b.Target(scale).Build("ref")
		if err != nil {
			t.Fatal(err)
		}
		suite, err := predict.NewSuite(predict.Names())
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := dbt.RunMultiObserved(img, tape, cfgs, []dbt.TraceObserver{suiteObserver{suite}}); err != nil {
			t.Fatal(err)
		}
		return suite.Results()
	}
	single := run([]dbt.Config{{Input: "ref"}})
	ladder := run([]dbt.Config{
		{Input: "ref"},
		{Input: "ref", Threshold: 2, Optimize: true},
		{Input: "ref", Threshold: 100, Optimize: true},
	})
	if !reflect.DeepEqual(single, ladder) {
		t.Errorf("tallies depend on follower count:\nsingle: %+v\nladder: %+v", single, ladder)
	}
}
