package guest

import (
	"fmt"

	"repro/internal/isa"
)

// Label identifies a code position that may be referenced before it is
// bound. Labels are created by a Builder and are only meaningful for the
// Builder that created them.
type Label int

// Builder assembles an Image incrementally with forward references.
// All control-transfer immediates are expressed as labels and patched at
// Build time.
type Builder struct {
	name      string
	code      []uint32
	labels    []int // label -> address, -1 while unbound
	labelName []string
	fixups    []fixup
	symbols   map[string]int
	jumps     map[int][]Label // jr pc -> possible target labels
	dataWords int
	initData  []uint32
	entry     Label
	hasEntry  bool
}

type fixup struct {
	pc    int   // instruction to patch
	label Label // target
}

// NewBuilder returns an empty Builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, symbols: make(map[string]int), jumps: make(map[int][]Label)}
}

// PC returns the address the next emitted instruction will occupy.
func (b *Builder) PC() int { return len(b.code) }

// NewLabel creates a fresh unbound label. The name is used only in error
// messages and the symbol table.
func (b *Builder) NewLabel(name string) Label {
	b.labels = append(b.labels, -1)
	b.labelName = append(b.labelName, name)
	return Label(len(b.labels) - 1)
}

// Bind attaches the label to the current PC. A label may be bound once.
func (b *Builder) Bind(l Label) {
	if b.labels[l] != -1 {
		panic(fmt.Sprintf("guest: label %q bound twice", b.labelName[l]))
	}
	b.labels[l] = len(b.code)
	if b.labelName[l] != "" {
		b.symbols[b.labelName[l]] = len(b.code)
	}
}

// Here creates a label bound at the current PC.
func (b *Builder) Here(name string) Label {
	l := b.NewLabel(name)
	b.Bind(l)
	return l
}

// SetEntry marks the label as the program entry point.
func (b *Builder) SetEntry(l Label) {
	b.entry = l
	b.hasEntry = true
}

// ReserveData ensures the image provides at least n words of data memory.
func (b *Builder) ReserveData(n int) {
	if n > b.dataWords {
		b.dataWords = n
	}
}

// SetInitData sets the initial contents of low data memory.
func (b *Builder) SetInitData(words []uint32) {
	b.initData = append([]uint32(nil), words...)
	b.ReserveData(len(words))
}

// Emit appends a non-control instruction (or one whose immediate needs no
// patching) and returns its address.
func (b *Builder) Emit(in isa.Inst) int {
	pc := len(b.code)
	b.code = append(b.code, isa.Encode(in))
	return pc
}

// Branch emits a conditional branch to the label.
func (b *Builder) Branch(op isa.Op, rs, rt uint8, target Label) int {
	if !op.IsCondBranch() {
		panic(fmt.Sprintf("guest: Branch with non-branch opcode %v", op))
	}
	pc := b.Emit(isa.Inst{Op: op, Rs: rs, Rt: rt})
	b.fixups = append(b.fixups, fixup{pc: pc, label: target})
	return pc
}

// Jump emits an unconditional jump to the label.
func (b *Builder) Jump(target Label) int {
	pc := b.Emit(isa.Inst{Op: isa.OpJmp})
	b.fixups = append(b.fixups, fixup{pc: pc, label: target})
	return pc
}

// Call emits a call to the label.
func (b *Builder) Call(target Label) int {
	pc := b.Emit(isa.Inst{Op: isa.OpCall})
	b.fixups = append(b.fixups, fixup{pc: pc, label: target})
	return pc
}

// Ret emits a return.
func (b *Builder) Ret() int { return b.Emit(isa.Inst{Op: isa.OpRet}) }

// JumpIndirect emits a jr through register rs that may reach any of the
// given labels; the set is recorded in the image's jump tables.
func (b *Builder) JumpIndirect(rs uint8, targets ...Label) int {
	pc := b.Emit(isa.Inst{Op: isa.OpJr, Rs: rs})
	b.jumps[pc] = append([]Label(nil), targets...)
	return pc
}

// Convenience emitters for common instruction shapes. They keep workload
// generators terse without hiding the underlying encoding.

// LoadImm emits instructions setting rd to the given 32-bit constant,
// using loadi (and luhi when the value does not fit in 14 signed bits).
// It returns the address of the first emitted instruction.
func (b *Builder) LoadImm(rd uint8, v int32) int {
	if v >= isa.MinImm && v <= isa.MaxImm {
		return b.Emit(isa.Inst{Op: isa.OpLoadi, Rd: rd, Imm: v})
	}
	// Wide constants are assembled from three 13-bit chunks, highest
	// first: loadi installs bits 31..26 (a non-negative 6-bit chunk),
	// then each luhi shifts the register left 13 and ors in the next
	// chunk: v = c2<<26 | c1<<13 | c0.
	u := uint32(v)
	c2 := int32(u >> 26)
	c1 := int32(u >> 13 & 0x1FFF)
	c0 := int32(u & 0x1FFF)
	pc := b.Emit(isa.Inst{Op: isa.OpLoadi, Rd: rd, Imm: c2})
	b.Emit(isa.Inst{Op: isa.OpLuhi, Rd: rd, Imm: c1})
	b.Emit(isa.Inst{Op: isa.OpLuhi, Rd: rd, Imm: c0})
	return pc
}

// Addi emits rd = rs + imm.
func (b *Builder) Addi(rd, rs uint8, imm int32) int {
	return b.Emit(isa.Inst{Op: isa.OpAddi, Rd: rd, Rs: rs, Imm: imm})
}

// In emits rd = next input word.
func (b *Builder) In(rd uint8) int { return b.Emit(isa.Inst{Op: isa.OpIn, Rd: rd}) }

// Nops emits n filler ALU instructions that consume cycles without
// changing control flow, simulating a block body of the given size.
// A mix of opcodes keeps the per-block cost model non-degenerate.
func (b *Builder) Nops(n int) {
	mix := []isa.Inst{
		{Op: isa.OpAdd, Rd: 13, Rs: 13, Rt: 12},
		{Op: isa.OpXor, Rd: 12, Rs: 12, Rt: 13},
		{Op: isa.OpShl, Rd: 13, Rs: 13, Rt: 12},
		{Op: isa.OpOr, Rd: 12, Rs: 12, Rt: 13},
	}
	for i := 0; i < n; i++ {
		b.Emit(mix[i%len(mix)])
	}
}

// FloatNops emits n floating-point filler instructions.
func (b *Builder) FloatNops(n int) {
	mix := []isa.Inst{
		{Op: isa.OpFadd, Rd: 13, Rs: 13, Rt: 12},
		{Op: isa.OpFmul, Rd: 12, Rs: 12, Rt: 13},
	}
	for i := 0; i < n; i++ {
		b.Emit(mix[i%len(mix)])
	}
}

// Build patches all fixups and returns the validated image.
func (b *Builder) Build() (*Image, error) {
	for _, f := range b.fixups {
		addr := b.labels[f.label]
		if addr == -1 {
			return nil, fmt.Errorf("guest: unbound label %q referenced at %d", b.labelName[f.label], f.pc)
		}
		in, err := isa.Decode(b.code[f.pc])
		if err != nil {
			return nil, fmt.Errorf("guest: fixup at %d: %w", f.pc, err)
		}
		off := addr - f.pc
		if off < isa.MinImm || off > isa.MaxImm {
			return nil, fmt.Errorf("guest: branch at %d to %q: offset %d exceeds 14-bit range", f.pc, b.labelName[f.label], off)
		}
		in.Imm = int32(off)
		b.code[f.pc] = isa.Encode(in)
	}
	entry := 0
	if b.hasEntry {
		entry = b.labels[b.entry]
		if entry == -1 {
			return nil, fmt.Errorf("guest: entry label %q never bound", b.labelName[b.entry])
		}
	}
	jt := make(map[int][]int, len(b.jumps))
	for pc, labels := range b.jumps {
		targets := make([]int, 0, len(labels))
		for _, l := range labels {
			addr := b.labels[l]
			if addr == -1 {
				return nil, fmt.Errorf("guest: jump table at %d references unbound label %q", pc, b.labelName[l])
			}
			targets = append(targets, addr)
		}
		jt[pc] = targets
	}
	img := &Image{
		Name:       b.name,
		Code:       append([]uint32(nil), b.code...),
		Entry:      entry,
		DataWords:  b.dataWords,
		InitData:   append([]uint32(nil), b.initData...),
		Symbols:    b.symbols,
		JumpTables: jt,
	}
	if err := img.Validate(); err != nil {
		return nil, err
	}
	return img, nil
}

// MustBuild is Build that panics on error, for tests and generators whose
// construction cannot legitimately fail.
func (b *Builder) MustBuild() *Image {
	img, err := b.Build()
	if err != nil {
		panic(err)
	}
	return img
}
