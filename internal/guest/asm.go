package guest

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// Assemble parses SG32 assembler text into an Image.
//
// Syntax, one item per line (';' starts a comment):
//
//	.name prog            program name
//	.data 64              reserve data words
//	.entry main           entry label
//	main:                 bind a label
//	loadi r1, 10          instructions in the syntax printed by
//	add r1, r2, r3        isa.Inst.String, with control-transfer
//	bne r1, r2, loop      immediates written as label names
//	jr r4, [a, b]         indirect jump with its target set
//	load r1, 8(r2)        memory operands as offset(base)
func Assemble(src string) (*Image, error) {
	b := NewBuilder("asm")
	labels := make(map[string]Label)
	getLabel := func(name string) Label {
		if l, ok := labels[name]; ok {
			return l
		}
		l := b.NewLabel(name)
		labels[name] = l
		return l
	}
	var entryName string
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("guest: line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
		}
		switch {
		case strings.HasPrefix(line, ".name "):
			b.name = strings.TrimSpace(line[len(".name "):])
			continue
		case strings.HasPrefix(line, ".data "):
			n, err := strconv.Atoi(strings.TrimSpace(line[len(".data "):]))
			if err != nil || n < 0 {
				return nil, fail("bad .data directive %q", line)
			}
			b.ReserveData(n)
			continue
		case strings.HasPrefix(line, ".entry "):
			entryName = strings.TrimSpace(line[len(".entry "):])
			continue
		case strings.HasSuffix(line, ":"):
			name := strings.TrimSuffix(line, ":")
			l := getLabel(name)
			b.Bind(l)
			continue
		}
		mnemonic, rest, _ := strings.Cut(line, " ")
		op, ok := isa.OpByName(mnemonic)
		if !ok {
			return nil, fail("unknown mnemonic %q", mnemonic)
		}
		args := splitArgs(rest)
		if err := emitParsed(b, op, args, getLabel); err != nil {
			return nil, fail("%v", err)
		}
	}
	if entryName != "" {
		l, ok := labels[entryName]
		if !ok {
			return nil, fmt.Errorf("guest: entry label %q not defined", entryName)
		}
		b.SetEntry(l)
	}
	return b.Build()
}

func splitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	// Re-join bracketed jump-table lists that contain commas.
	var out []string
	depth := 0
	cur := ""
	for _, p := range parts {
		if cur != "" {
			cur += ","
		}
		cur += p
		depth += strings.Count(p, "[") - strings.Count(p, "]")
		if depth == 0 {
			out = append(out, strings.TrimSpace(cur))
			cur = ""
		}
	}
	if cur != "" {
		out = append(out, strings.TrimSpace(cur))
	}
	return out
}

func parseReg(s string) (uint8, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != 'r' {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}

func parseImm(s string) (int32, error) {
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return int32(n), nil
}

// parseMem parses "offset(rN)" into offset and base register.
func parseMem(s string) (int32, uint8, error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	off, err := parseImm(s[:open])
	if err != nil {
		return 0, 0, err
	}
	base, err := parseReg(s[open+1 : len(s)-1])
	if err != nil {
		return 0, 0, err
	}
	return off, base, nil
}

func emitParsed(b *Builder, op isa.Op, args []string, getLabel func(string) Label) error {
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%v expects %d operands, got %d", op, n, len(args))
		}
		return nil
	}
	switch op {
	case isa.OpNop, isa.OpHalt, isa.OpRet:
		if err := need(0); err != nil {
			return err
		}
		b.Emit(isa.Inst{Op: op})
	case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpShl, isa.OpShr, isa.OpFadd, isa.OpFmul, isa.OpFdiv:
		if err := need(3); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs, err := parseReg(args[1])
		if err != nil {
			return err
		}
		rt, err := parseReg(args[2])
		if err != nil {
			return err
		}
		b.Emit(isa.Inst{Op: op, Rd: rd, Rs: rs, Rt: rt})
	case isa.OpAddi:
		if err := need(3); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs, err := parseReg(args[1])
		if err != nil {
			return err
		}
		imm, err := parseImm(args[2])
		if err != nil {
			return err
		}
		if imm < isa.MinImm || imm > isa.MaxImm {
			return fmt.Errorf("addi immediate %d exceeds 14-bit range", imm)
		}
		b.Emit(isa.Inst{Op: op, Rd: rd, Rs: rs, Imm: imm})
	case isa.OpLoadi, isa.OpLuhi:
		if err := need(2); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		imm, err := parseImm(args[1])
		if err != nil {
			return err
		}
		if op == isa.OpLoadi {
			// Wide constants expand to the loadi/luhi sequence.
			b.LoadImm(rd, imm)
			return nil
		}
		if imm < isa.MinImm || imm > isa.MaxImm {
			return fmt.Errorf("luhi immediate %d exceeds 14-bit range", imm)
		}
		b.Emit(isa.Inst{Op: op, Rd: rd, Imm: imm})
	case isa.OpMov:
		if err := need(2); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs, err := parseReg(args[1])
		if err != nil {
			return err
		}
		b.Emit(isa.Inst{Op: op, Rd: rd, Rs: rs})
	case isa.OpLoad:
		if err := need(2); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		off, base, err := parseMem(args[1])
		if err != nil {
			return err
		}
		b.Emit(isa.Inst{Op: op, Rd: rd, Rs: base, Imm: off})
	case isa.OpStore:
		if err := need(2); err != nil {
			return err
		}
		rt, err := parseReg(args[0])
		if err != nil {
			return err
		}
		off, base, err := parseMem(args[1])
		if err != nil {
			return err
		}
		b.Emit(isa.Inst{Op: op, Rt: rt, Rs: base, Imm: off})
	case isa.OpIn:
		if err := need(1); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		b.Emit(isa.Inst{Op: op, Rd: rd})
	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge:
		if err := need(3); err != nil {
			return err
		}
		rs, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rt, err := parseReg(args[1])
		if err != nil {
			return err
		}
		b.Branch(op, rs, rt, getLabel(args[2]))
	case isa.OpJmp:
		if err := need(1); err != nil {
			return err
		}
		b.Jump(getLabel(args[0]))
	case isa.OpCall:
		if err := need(1); err != nil {
			return err
		}
		b.Call(getLabel(args[0]))
	case isa.OpJr:
		if err := need(2); err != nil {
			return err
		}
		rs, err := parseReg(args[0])
		if err != nil {
			return err
		}
		list := strings.TrimSpace(args[1])
		if !strings.HasPrefix(list, "[") || !strings.HasSuffix(list, "]") {
			return fmt.Errorf("jr needs a [label, ...] target list, got %q", list)
		}
		var targets []Label
		for _, name := range strings.Split(list[1:len(list)-1], ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			targets = append(targets, getLabel(name))
		}
		if len(targets) == 0 {
			return fmt.Errorf("jr with empty target list")
		}
		b.JumpIndirect(rs, targets...)
	default:
		return fmt.Errorf("unhandled opcode %v", op)
	}
	return nil
}
