// Package guest represents SG32 guest program images: the binaries that
// the dynamic binary translator loads, decodes and executes.
//
// An Image is the unit of translation input. It carries the encoded code
// segment, the entry point, optional initial data memory, a symbol table
// (label -> code address) used by tooling and tests, and jump tables that
// enumerate the possible targets of register-indirect jumps. Real
// translators discover indirect targets at run time; the jump tables here
// serve the same role for static CFG recovery in the offline analysis
// tool and do not leak information to the translator's hot path.
package guest

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/isa"
)

// Image is a loaded SG32 guest binary.
type Image struct {
	// Name identifies the program (benchmark name for the synthetic
	// suite).
	Name string
	// Code is the encoded instruction stream; addresses are word
	// indices into this slice.
	Code []uint32
	// Entry is the address of the first instruction to execute.
	Entry int
	// DataWords is the number of words of guest data memory the
	// program requires.
	DataWords int
	// InitData holds initial values for the low words of data memory.
	InitData []uint32
	// Symbols maps label names to code addresses.
	Symbols map[string]int
	// JumpTables maps the address of each jr instruction to the set of
	// addresses it may jump to.
	JumpTables map[int][]int
}

// Validate checks structural invariants: entry in range, decodable code,
// jump-table entries in range and attached to jr instructions, and
// control-transfer targets within the code segment.
func (img *Image) Validate() error {
	if len(img.Code) == 0 {
		return errors.New("guest: empty code segment")
	}
	if img.Entry < 0 || img.Entry >= len(img.Code) {
		return fmt.Errorf("guest: entry %d outside code [0,%d)", img.Entry, len(img.Code))
	}
	if len(img.InitData) > img.DataWords {
		return fmt.Errorf("guest: %d init words exceed data size %d", len(img.InitData), img.DataWords)
	}
	for pc, w := range img.Code {
		in, err := isa.Decode(w)
		if err != nil {
			return fmt.Errorf("guest: at %d: %w", pc, err)
		}
		if in.Op.IsCondBranch() || in.Op.IsUncondJump() {
			tgt := pc + int(in.Imm)
			if tgt < 0 || tgt >= len(img.Code) {
				return fmt.Errorf("guest: at %d: %v targets %d outside code", pc, in, tgt)
			}
		}
		if in.Op == isa.OpJr {
			targets := img.JumpTables[pc]
			if len(targets) == 0 {
				return fmt.Errorf("guest: at %d: jr without jump table", pc)
			}
			for _, t := range targets {
				if t < 0 || t >= len(img.Code) {
					return fmt.Errorf("guest: at %d: jump table target %d outside code", pc, t)
				}
			}
		}
	}
	for name, addr := range img.Symbols {
		if addr < 0 || addr >= len(img.Code) {
			return fmt.Errorf("guest: symbol %q at %d outside code", name, addr)
		}
	}
	return nil
}

// Decode returns the decoded instruction at address pc.
func (img *Image) Decode(pc int) (isa.Inst, error) {
	if pc < 0 || pc >= len(img.Code) {
		return isa.Inst{}, fmt.Errorf("guest: pc %d outside code [0,%d)", pc, len(img.Code))
	}
	return isa.Decode(img.Code[pc])
}

// SymbolAt returns the name of a symbol bound exactly at addr, if any.
func (img *Image) SymbolAt(addr int) (string, bool) {
	for name, a := range img.Symbols {
		if a == addr {
			return name, true
		}
	}
	return "", false
}

// Disassemble renders the whole code segment with symbol annotations.
func (img *Image) Disassemble() string {
	type sym struct {
		addr int
		name string
	}
	syms := make([]sym, 0, len(img.Symbols))
	for name, addr := range img.Symbols {
		syms = append(syms, sym{addr, name})
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i].addr < syms[j].addr })
	out := ""
	next := 0
	for pc := range img.Code {
		for next < len(syms) && syms[next].addr == pc {
			out += syms[next].name + ":\n"
			next++
		}
		out += isa.Disassemble(img.Code[pc:pc+1], pc)
	}
	return out
}

// Binary image format:
//
//	magic "SG32" | version u32 | entry u32 | dataWords u32 |
//	codeLen u32 | code words |
//	initLen u32 | init words |
//	symCount u32 | { nameLen u32 | name | addr u32 } |
//	jtCount u32 | { pc u32 | n u32 | targets } |
//	nameLen u32 | name
const (
	imageMagic   = "SG32"
	imageVersion = 1
)

var errBadMagic = errors.New("guest: not an SG32 image")

func writeU32(w io.Writer, v uint32) error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

func readU32(r io.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

func writeString(w io.Writer, s string) error {
	if err := writeU32(w, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader, maxLen uint32) (string, error) {
	n, err := readU32(r)
	if err != nil {
		return "", err
	}
	if n > maxLen {
		return "", fmt.Errorf("guest: string length %d exceeds limit %d", n, maxLen)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// Save writes the image in the SG32 binary format.
func (img *Image) Save(w io.Writer) error {
	if _, err := io.WriteString(w, imageMagic); err != nil {
		return err
	}
	for _, v := range []uint32{imageVersion, uint32(img.Entry), uint32(img.DataWords), uint32(len(img.Code))} {
		if err := writeU32(w, v); err != nil {
			return err
		}
	}
	for _, word := range img.Code {
		if err := writeU32(w, word); err != nil {
			return err
		}
	}
	if err := writeU32(w, uint32(len(img.InitData))); err != nil {
		return err
	}
	for _, word := range img.InitData {
		if err := writeU32(w, word); err != nil {
			return err
		}
	}
	if err := writeU32(w, uint32(len(img.Symbols))); err != nil {
		return err
	}
	names := make([]string, 0, len(img.Symbols))
	for name := range img.Symbols {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := writeString(w, name); err != nil {
			return err
		}
		if err := writeU32(w, uint32(img.Symbols[name])); err != nil {
			return err
		}
	}
	if err := writeU32(w, uint32(len(img.JumpTables))); err != nil {
		return err
	}
	pcs := make([]int, 0, len(img.JumpTables))
	for pc := range img.JumpTables {
		pcs = append(pcs, pc)
	}
	sort.Ints(pcs)
	for _, pc := range pcs {
		targets := img.JumpTables[pc]
		if err := writeU32(w, uint32(pc)); err != nil {
			return err
		}
		if err := writeU32(w, uint32(len(targets))); err != nil {
			return err
		}
		for _, t := range targets {
			if err := writeU32(w, uint32(t)); err != nil {
				return err
			}
		}
	}
	return writeString(w, img.Name)
}

// ContentHash returns the hex SHA-256 of the image's deterministic SG32
// serialization. Save sorts symbols and jump tables, so two images with
// the same semantic content hash identically regardless of construction
// order; the result-cache key derivation depends on that.
func (img *Image) ContentHash() string {
	h := sha256.New()
	// Save only fails on writer errors and a hash never errors.
	_ = img.Save(h)
	return hex.EncodeToString(h.Sum(nil))
}

// Load reads an image previously written by Save and validates it.
func Load(r io.Reader) (*Image, error) {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, err
	}
	if string(magic) != imageMagic {
		return nil, errBadMagic
	}
	version, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if version != imageVersion {
		return nil, fmt.Errorf("guest: unsupported image version %d", version)
	}
	img := &Image{}
	entry, err := readU32(r)
	if err != nil {
		return nil, err
	}
	img.Entry = int(entry)
	dataWords, err := readU32(r)
	if err != nil {
		return nil, err
	}
	img.DataWords = int(dataWords)
	const maxWords = 1 << 24 // 64 Mi words is far beyond any synthetic program
	// Lengths come from untrusted input: grow incrementally instead of
	// trusting the header with one huge allocation, so a corrupted
	// length costs a fast read-to-EOF, not gigabytes.
	readWords := func(kind string) ([]uint32, error) {
		n, err := readU32(r)
		if err != nil {
			return nil, err
		}
		if n > maxWords {
			return nil, fmt.Errorf("guest: %s length %d exceeds limit", kind, n)
		}
		initialCap := n
		if initialCap > 4096 {
			initialCap = 4096
		}
		words := make([]uint32, 0, initialCap)
		for i := uint32(0); i < n; i++ {
			w, err := readU32(r)
			if err != nil {
				return nil, err
			}
			words = append(words, w)
		}
		return words, nil
	}
	if img.Code, err = readWords("code"); err != nil {
		return nil, err
	}
	if img.InitData, err = readWords("init"); err != nil {
		return nil, err
	}
	symCount, err := readU32(r)
	if err != nil {
		return nil, err
	}
	symCap := symCount
	if symCap > 4096 {
		symCap = 4096 // capacity hint only; the count is untrusted
	}
	img.Symbols = make(map[string]int, symCap)
	for i := uint32(0); i < symCount; i++ {
		name, err := readString(r, 1<<16)
		if err != nil {
			return nil, err
		}
		addr, err := readU32(r)
		if err != nil {
			return nil, err
		}
		img.Symbols[name] = int(addr)
	}
	jtCount, err := readU32(r)
	if err != nil {
		return nil, err
	}
	jtCap := jtCount
	if jtCap > 4096 {
		jtCap = 4096 // capacity hint only; the count is untrusted
	}
	img.JumpTables = make(map[int][]int, jtCap)
	for i := uint32(0); i < jtCount; i++ {
		pc, err := readU32(r)
		if err != nil {
			return nil, err
		}
		n, err := readU32(r)
		if err != nil {
			return nil, err
		}
		if n > maxWords {
			return nil, fmt.Errorf("guest: jump table size %d exceeds limit", n)
		}
		cap0 := n
		if cap0 > 4096 {
			cap0 = 4096
		}
		targets := make([]int, 0, cap0)
		for j := uint32(0); j < n; j++ {
			t, err := readU32(r)
			if err != nil {
				return nil, err
			}
			targets = append(targets, int(t))
		}
		img.JumpTables[int(pc)] = targets
	}
	if img.Name, err = readString(r, 1<<16); err != nil {
		return nil, err
	}
	if err := img.Validate(); err != nil {
		return nil, err
	}
	return img, nil
}
