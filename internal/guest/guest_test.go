package guest

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

// buildLoop constructs a minimal counted-loop program used across tests.
func buildLoop(t *testing.T) *Image {
	t.Helper()
	b := NewBuilder("loop10")
	main := b.Here("main")
	b.SetEntry(main)
	b.LoadImm(1, 10)
	b.LoadImm(2, 0)
	loop := b.Here("loop")
	b.Addi(1, 1, -1)
	b.Branch(isa.OpBne, 1, 2, loop)
	b.Emit(isa.Inst{Op: isa.OpHalt})
	img, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return img
}

func TestBuilderProducesValidImage(t *testing.T) {
	img := buildLoop(t)
	if err := img.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if img.Entry != 0 {
		t.Fatalf("entry = %d, want 0", img.Entry)
	}
	if _, ok := img.Symbols["loop"]; !ok {
		t.Fatal("missing symbol 'loop'")
	}
	// The backward branch must target the loop label.
	brPC := img.Symbols["loop"] + 1
	in, err := img.Decode(brPC)
	if err != nil {
		t.Fatal(err)
	}
	if in.Op != isa.OpBne || brPC+int(in.Imm) != img.Symbols["loop"] {
		t.Fatalf("branch at %d = %v does not target loop", brPC, in)
	}
}

func TestBuilderUnboundLabel(t *testing.T) {
	b := NewBuilder("bad")
	l := b.NewLabel("nowhere")
	b.Jump(l)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "unbound label") {
		t.Fatalf("Build with unbound label: err = %v", err)
	}
}

func TestBuilderDoubleBindPanics(t *testing.T) {
	b := NewBuilder("bad")
	l := b.Here("x")
	defer func() {
		if recover() == nil {
			t.Fatal("double Bind did not panic")
		}
	}()
	b.Bind(l)
}

func TestBuilderBranchRangeCheck(t *testing.T) {
	b := NewBuilder("far")
	start := b.Here("start")
	b.SetEntry(start)
	target := b.NewLabel("far")
	b.Jump(target)
	b.Nops(isa.MaxImm + 10)
	b.Bind(target)
	b.Emit(isa.Inst{Op: isa.OpHalt})
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "14-bit range") {
		t.Fatalf("Build with out-of-range branch: err = %v", err)
	}
}

func TestBuilderBranchRejectsNonBranchOp(t *testing.T) {
	b := NewBuilder("bad")
	l := b.Here("x")
	defer func() {
		if recover() == nil {
			t.Fatal("Branch(OpAdd) did not panic")
		}
	}()
	b.Branch(isa.OpAdd, 0, 0, l)
}

func TestLoadImmWideConstants(t *testing.T) {
	// Verify the chunk decomposition by symbolically evaluating the
	// emitted loadi/luhi sequence.
	for _, v := range []int32{0, 1, -1, 42, 8191, -8192, 8192, -8193, 1 << 20, -(1 << 20), 2147483647, -2147483648} {
		b := NewBuilder("imm")
		e := b.Here("e")
		b.SetEntry(e)
		b.LoadImm(3, v)
		b.Emit(isa.Inst{Op: isa.OpHalt})
		img := b.MustBuild()
		var r3 uint32
		for pc := 0; pc < len(img.Code); pc++ {
			in, err := img.Decode(pc)
			if err != nil {
				t.Fatal(err)
			}
			switch in.Op {
			case isa.OpLoadi:
				r3 = uint32(in.Imm)
			case isa.OpLuhi:
				r3 = r3<<13 | uint32(in.Imm)&0x1FFF
			}
		}
		if int32(r3) != v {
			t.Fatalf("LoadImm(%d) evaluates to %d", v, int32(r3))
		}
	}
}

func TestQuickLoadImm(t *testing.T) {
	f := func(v int32) bool {
		b := NewBuilder("imm")
		e := b.Here("e")
		b.SetEntry(e)
		b.LoadImm(1, v)
		b.Emit(isa.Inst{Op: isa.OpHalt})
		img := b.MustBuild()
		var r uint32
		for pc := range img.Code {
			in, _ := img.Decode(pc)
			switch in.Op {
			case isa.OpLoadi:
				r = uint32(in.Imm)
			case isa.OpLuhi:
				r = r<<13 | uint32(in.Imm)&0x1FFF
			}
		}
		return int32(r) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadEntry(t *testing.T) {
	img := buildLoop(t)
	img.Entry = len(img.Code)
	if err := img.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range entry")
	}
}

func TestValidateCatchesBranchOutOfCode(t *testing.T) {
	img := buildLoop(t)
	img.Code[len(img.Code)-1] = isa.Encode(isa.Inst{Op: isa.OpJmp, Imm: 100})
	if err := img.Validate(); err == nil {
		t.Fatal("Validate accepted branch target outside code")
	}
}

func TestValidateCatchesJrWithoutTable(t *testing.T) {
	b := NewBuilder("jr")
	e := b.Here("e")
	b.SetEntry(e)
	l := b.Here("t")
	b.JumpIndirect(1, l)
	b.Emit(isa.Inst{Op: isa.OpHalt})
	img := b.MustBuild()
	img.JumpTables = nil
	if err := img.Validate(); err == nil || !strings.Contains(err.Error(), "jump table") {
		t.Fatalf("Validate accepted jr without table: %v", err)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	b := NewBuilder("rt")
	main := b.Here("main")
	b.SetEntry(main)
	b.ReserveData(128)
	b.SetInitData([]uint32{1, 2, 3})
	t1 := b.NewLabel("t1")
	t2 := b.NewLabel("t2")
	b.LoadImm(1, 5)
	b.JumpIndirect(1, t1, t2)
	b.Bind(t1)
	b.Nops(3)
	b.Bind(t2)
	b.Emit(isa.Inst{Op: isa.OpHalt})
	img := b.MustBuild()

	var buf bytes.Buffer
	if err := img.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Name != img.Name || got.Entry != img.Entry || got.DataWords != img.DataWords {
		t.Fatalf("header mismatch: %+v vs %+v", got, img)
	}
	if len(got.Code) != len(img.Code) {
		t.Fatalf("code length %d vs %d", len(got.Code), len(img.Code))
	}
	for i := range img.Code {
		if got.Code[i] != img.Code[i] {
			t.Fatalf("code[%d] differs", i)
		}
	}
	if len(got.Symbols) != len(img.Symbols) {
		t.Fatalf("symbols %v vs %v", got.Symbols, img.Symbols)
	}
	for name, addr := range img.Symbols {
		if got.Symbols[name] != addr {
			t.Fatalf("symbol %q: %d vs %d", name, got.Symbols[name], addr)
		}
	}
	for pc, targets := range img.JumpTables {
		gt := got.JumpTables[pc]
		if len(gt) != len(targets) {
			t.Fatalf("jump table at %d: %v vs %v", pc, gt, targets)
		}
		for i := range targets {
			if gt[i] != targets[i] {
				t.Fatalf("jump table at %d entry %d differs", pc, i)
			}
		}
	}
	if len(got.InitData) != 3 || got.InitData[2] != 3 {
		t.Fatalf("init data %v", got.InitData)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("NOPE0000"))); err == nil {
		t.Fatal("Load accepted bad magic")
	}
	var buf bytes.Buffer
	img := buildLoop(t)
	if err := img.Save(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Load(bytes.NewReader(trunc)); err == nil {
		t.Fatal("Load accepted truncated image")
	}
}

func TestDisassembleHasSymbols(t *testing.T) {
	img := buildLoop(t)
	text := img.Disassemble()
	if !strings.Contains(text, "main:") || !strings.Contains(text, "loop:") {
		t.Fatalf("disassembly missing labels:\n%s", text)
	}
	if !strings.Contains(text, "bne") {
		t.Fatalf("disassembly missing branch:\n%s", text)
	}
}

func TestAssembleRoundTrip(t *testing.T) {
	src := `
; counted loop with a call and an indirect jump
.name demo
.data 16
.entry main
main:
	loadi r1, 10
	loadi r2, 0
	call helper
loop:
	addi r1, r1, -1
	in r5
	store r5, 0(r2)
	load r6, 0(r2)
	bne r1, r2, loop
	loadi r7, 9
	jr r7, [end, loop]
end:
	halt
helper:
	add r3, r1, r2
	ret
`
	img, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if img.Name != "demo" || img.DataWords != 16 {
		t.Fatalf("directives not honoured: %+v", img)
	}
	if img.Entry != img.Symbols["main"] {
		t.Fatalf("entry %d != main %d", img.Entry, img.Symbols["main"])
	}
	if err := img.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// The jr must have a two-entry jump table.
	found := false
	for _, targets := range img.JumpTables {
		if len(targets) == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("jump tables wrong: %v", img.JumpTables)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus r1, r2",
		"add r1, r2",
		"add r1, r2, r99",
		"addi r1, r2, xyz",
		"load r1, r2",
		"jr r1, loop",
		".entry missing\nnop",
		"beq r1, r2, undefinedlabel",
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

func TestAssembleMatchesBuilder(t *testing.T) {
	img1 := func() *Image {
		b := NewBuilder("x")
		m := b.Here("m")
		b.SetEntry(m)
		b.Emit(isa.Inst{Op: isa.OpLoadi, Rd: 1, Imm: 3})
		loop := b.Here("loop")
		b.Addi(1, 1, -1)
		b.Branch(isa.OpBne, 1, 0, loop)
		b.Emit(isa.Inst{Op: isa.OpHalt})
		return b.MustBuild()
	}()
	img2, err := Assemble(".entry m\nm:\nloadi r1, 3\nloop:\naddi r1, r1, -1\nbne r1, r0, loop\nhalt\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(img1.Code) != len(img2.Code) {
		t.Fatalf("lengths differ: %d vs %d", len(img1.Code), len(img2.Code))
	}
	for i := range img1.Code {
		if img1.Code[i] != img2.Code[i] {
			t.Fatalf("word %d: %#x vs %#x", i, img1.Code[i], img2.Code[i])
		}
	}
}

func TestContentHashStableAndDiscriminating(t *testing.T) {
	a := buildLoop(t)
	b := buildLoop(t)
	if a.ContentHash() != b.ContentHash() {
		t.Fatal("identical images hash differently")
	}
	// The hash must be the hash of the Save bytes — the format every
	// other consumer of image identity already trusts.
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(buf.Bytes())
	if a.ContentHash() != hex.EncodeToString(sum[:]) {
		t.Fatal("ContentHash does not match sha256(Save bytes)")
	}
	c := buildLoop(t)
	c.Code[0] ^= 1 << 14
	if a.ContentHash() == c.ContentHash() {
		t.Fatal("one-word code change did not change the hash")
	}
	d := buildLoop(t)
	d.Symbols["extra"] = 0
	if a.ContentHash() == d.ContentHash() {
		t.Fatal("symbol change did not change the hash")
	}
}
