package guest

import (
	"bytes"
	"encoding/hex"
	"testing"

	"repro/internal/isa"
)

// TestImageFormatGolden pins the binary image format byte-for-byte: a
// change that breaks previously written .sg32 files must show up here,
// not in a user's corpus.
func TestImageFormatGolden(t *testing.T) {
	b := NewBuilder("g")
	main := b.Here("m")
	b.SetEntry(main)
	b.Emit(isa.Inst{Op: isa.OpLoadi, Rd: 1, Imm: 7})
	b.Emit(isa.Inst{Op: isa.OpHalt})
	img := b.MustBuild()
	img.DataWords = 4
	img.InitData = []uint32{0xdeadbeef}

	var buf bytes.Buffer
	if err := img.Save(&buf); err != nil {
		t.Fatal(err)
	}
	const golden = "53473332010000000000000004000000020000000700402c0000000401000000efbeadde01000000010000006d00000000000000000100000067"
	got := hex.EncodeToString(buf.Bytes())
	if got != golden {
		t.Fatalf("image format drifted:\n got  %s\n want %s", got, golden)
	}
	// And it still loads.
	back, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "g" || back.InitData[0] != 0xdeadbeef {
		t.Fatalf("golden image loads wrong: %+v", back)
	}
}

// TestLoadTruncationsNeverPanic loads a valid image truncated at every
// possible byte boundary: each must produce an error (or, only at full
// length, success) and never panic.
func TestLoadTruncationsNeverPanic(t *testing.T) {
	b := NewBuilder("t")
	m := b.Here("m")
	b.SetEntry(m)
	t1 := b.NewLabel("t1")
	b.LoadImm(1, 3)
	b.JumpIndirect(1, t1)
	b.Bind(t1)
	b.Emit(isa.Inst{Op: isa.OpHalt})
	img := b.MustBuild()
	img.InitData = []uint32{1, 2}
	img.DataWords = 2

	var buf bytes.Buffer
	if err := img.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for n := 0; n < len(raw); n++ {
		if _, err := Load(bytes.NewReader(raw[:n])); err == nil {
			t.Fatalf("truncation at %d of %d loaded successfully", n, len(raw))
		}
	}
	if _, err := Load(bytes.NewReader(raw)); err != nil {
		t.Fatalf("full image failed to load: %v", err)
	}
}

// TestLoadCorruptedWordsNeverPanic flips bytes across the image: Load
// must either reject the result or produce a validating image.
func TestLoadCorruptedWordsNeverPanic(t *testing.T) {
	b := NewBuilder("c")
	m := b.Here("m")
	b.SetEntry(m)
	b.LoadImm(1, 3)
	b.Emit(isa.Inst{Op: isa.OpHalt})
	img := b.MustBuild()
	var buf bytes.Buffer
	if err := img.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for i := 0; i < len(raw); i++ {
		for _, flip := range []byte{0xFF, 0x80, 0x01} {
			mut := append([]byte(nil), raw...)
			mut[i] ^= flip
			got, err := Load(bytes.NewReader(mut))
			if err != nil {
				continue
			}
			if verr := got.Validate(); verr != nil {
				t.Fatalf("Load accepted an image that fails Validate: byte %d flip %#x: %v", i, flip, verr)
			}
		}
	}
}
