package guest

import (
	"bytes"
	"testing"

	"repro/internal/isa"
)

// fuzzSeedImage builds a small but fully featured image (code, data,
// symbols, a jump table) whose serialization seeds the corpus.
func fuzzSeedImage() *Image {
	b := NewBuilder("fuzzseed")
	main := b.Here("main")
	b.SetEntry(main)
	b.ReserveData(8)
	b.LoadImm(1, 3)
	tgt := b.Here("tgt")
	b.Addi(1, 1, -1)
	b.Branch(isa.OpBne, 1, 0, tgt)
	b.JumpIndirect(2, tgt, main)
	b.Emit(isa.Inst{Op: isa.OpHalt})
	return b.MustBuild()
}

// FuzzImageLoad checks the SG32 loader over arbitrary byte streams:
// Load never panics, and any stream it accepts round-trips through a
// canonical Save whose bytes are a fixed point of Load∘Save.
func FuzzImageLoad(f *testing.F) {
	var seed bytes.Buffer
	if err := fuzzSeedImage().Save(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte(nil))
	f.Add([]byte("SG32"))
	f.Add(seed.Bytes()[:len(seed.Bytes())/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		var first bytes.Buffer
		if err := img.Save(&first); err != nil {
			t.Fatalf("Save of a loaded image failed: %v", err)
		}
		img2, err := Load(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("canonical serialization does not load back: %v", err)
		}
		var second bytes.Buffer
		if err := img2.Save(&second); err != nil {
			t.Fatalf("re-Save failed: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatal("Save is not canonical: second round-trip changed bytes")
		}
	})
}
