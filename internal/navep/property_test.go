package navep

import (
	"testing"
	"testing/quick"

	"repro/internal/profile"
	"repro/internal/rng"
)

// randomScenario builds a random but well-formed INIP/AVEP pair: a set
// of AVEP blocks and a few linear trace regions over random subsets,
// with AVEP frequencies and probabilities drawn from the seed.
func randomScenario(seed uint64) (*profile.Snapshot, *profile.Snapshot) {
	r := rng.New(seed)
	nBlocks := 4 + r.Intn(12)
	avep := profile.NewSnapshot("p", "ref", 0, false)
	addrs := make([]int, nBlocks)
	for i := 0; i < nBlocks; i++ {
		addr := 10 * (i + 1)
		addrs[i] = addr
		use := uint64(100 + r.Intn(100000))
		taken := uint64(float64(use) * r.Float64())
		avep.Blocks[addr] = &profile.Block{
			Addr: addr, End: addr + 1, Use: use, Taken: taken,
			HasBranch: true, TakenTarget: addr + 10, FallTarget: addr + 2,
		}
	}
	inip := profile.NewSnapshot("p", "ref", 100, true)
	nextID := 1
	nRegions := 1 + r.Intn(3)
	for ri := 0; ri < nRegions; ri++ {
		length := 2 + r.Intn(3)
		start := r.Intn(nBlocks)
		reg := &profile.Region{ID: ri, Kind: profile.RegionTrace}
		for k := 0; k < length; k++ {
			addr := addrs[(start+k)%nBlocks]
			use := uint64(100 + r.Intn(100))
			rb := profile.RegionBlock{
				ID: nextID, Addr: addr,
				Use: use, Taken: uint64(float64(use) * r.Float64()),
				HasBranch: true,
				TakenNext: -1, FallNext: -1,
				TakenTarget: addr + 10, FallTarget: addr + 2,
			}
			nextID++
			if k > 0 {
				prev := &reg.Blocks[k-1]
				if r.Bernoulli(0.5) {
					prev.TakenNext = rb.ID
				} else {
					prev.FallNext = rb.ID
				}
			}
			reg.Blocks = append(reg.Blocks, rb)
		}
		reg.Entry = reg.Blocks[0].ID
		inip.Regions = append(inip.Regions, reg)
	}
	return inip, avep
}

// Property: normalization always succeeds on well-formed inputs, yields
// non-negative weights, and never assigns a probability outside [0, 1].
func TestQuickNormalizeWellFormed(t *testing.T) {
	f := func(seed uint64) bool {
		inip, avep := randomScenario(seed)
		res, err := Normalize(inip, avep)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for _, b := range res.Blocks {
			if b.W < 0 || b.BT < 0 || b.BT > 1 || b.BM < 0 || b.BM > 1 {
				t.Logf("seed %d: bad item %+v", seed, b)
				return false
			}
		}
		for _, tr := range res.Traces {
			if tr.CT < -1e-9 || tr.CT > 1+1e-9 || tr.CM < -1e-9 || tr.CM > 1+1e-9 {
				t.Logf("seed %d: bad trace %+v", seed, tr)
				return false
			}
			if tr.W < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: for an address whose copies include a region entry, the
// copy weights sum to the AVEP frequency (mass conservation, the
// invariant of the paper's Figure 4).
func TestQuickMassConservation(t *testing.T) {
	f := func(seed uint64) bool {
		inip, avep := randomScenario(seed)
		res, err := Normalize(inip, avep)
		if err != nil {
			return false
		}
		// Sum weights by address, and find which addresses have an
		// entry copy.
		sums := map[int]float64{}
		hasEntry := map[int]bool{}
		counts := map[int]int{}
		for _, r := range inip.Regions {
			entryAddr := r.EntryBlock().Addr
			hasEntry[entryAddr] = true
			for i := range r.Blocks {
				counts[r.Blocks[i].Addr]++
			}
		}
		for _, b := range res.Blocks {
			if b.CopyID >= 0 {
				sums[b.Addr] += b.W
			}
		}
		for addr, sum := range sums {
			if !hasEntry[addr] {
				continue // no remainder absorber: conservation not guaranteed
			}
			freq := float64(avep.Blocks[addr].Use)
			// The remainder equation clamps at zero, so the sum may
			// undershoot when interior inflow exceeds the AVEP count,
			// but must never exceed it beyond rounding... except when
			// clamping leaves excess interior flow. Allow overshoot only
			// from that clamp: tolerate 1e-6 relative otherwise.
			if counts[addr] == 1 && !almostEqual(sum, freq) {
				t.Logf("seed %d: unique addr %d sum %v != freq %v", seed, addr, sum, freq)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func almostEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := b
	if scale < 1 {
		scale = 1
	}
	return d <= 1e-6*scale
}
