// Package navep normalizes an average profile (AVEP) to the control-flow
// graph seen by an initial profile INIP(T), producing the NAVEP view of
// section 3.1 of the paper.
//
// The optimizer duplicates blocks into multiple regions, so INIP(T) may
// contain several copies of one AVEP block. Normalization:
//
//  1. assigns every copy the branch probability of its original block in
//     AVEP;
//  2. recovers per-copy frequencies by flow conservation: frequencies of
//     non-duplicated blocks are pinned to their AVEP values, interior
//     copies receive the probability-weighted inflow of their in-region
//     predecessors, and duplicated region entries absorb the remainder
//     of their original block's AVEP frequency (the approximation the
//     paper acknowledges for duplicated head blocks);
//  3. evaluates each region's completion probability (traces) and
//     loop-back probability (loops) under both the frozen INIP
//     probabilities and the substituted AVEP probabilities.
//
// The output feeds the metrics package, which turns it into the paper's
// Sd.BP / Sd.CP / Sd.LP and mismatch-rate figures.
package navep

import (
	"fmt"
	"sort"

	"repro/internal/markov"
	"repro/internal/profile"
	"repro/internal/region"
)

// BlockItem is one block instance of the NAVEP view that carries a
// conditional branch: its predicted (BT) and average (BM) branch
// probabilities and its weight W (the instance's frequency in NAVEP).
type BlockItem struct {
	Addr   int
	CopyID int // region copy ID, or -1 for a plain (non-region) block
	BT     float64
	BM     float64
	W      float64
}

// RegionItem is one region of INIP(T) evaluated under both probability
// assignments. For traces CT/CM hold completion probabilities; for loops
// LT/LM hold loop-back probabilities.
type RegionItem struct {
	Region *profile.Region
	W      float64 // entry-block frequency in NAVEP
	CT, CM float64
	LT, LM float64
}

// Result is the NAVEP view of one INIP/AVEP pair.
type Result struct {
	Blocks []BlockItem
	Traces []RegionItem
	Loops  []RegionItem
	// DuplicatedAddrs counts original blocks with more than one copy.
	DuplicatedAddrs int
	// Unknowns is the number of frequencies recovered by the solver.
	Unknowns int
	// MissingInAVEP counts INIP block instances whose address never
	// executed under the AVEP run (excluded from the comparison).
	MissingInAVEP int
}

// avepProb returns the AVEP branch probability for addr; ok=false when
// AVEP has no data for it.
func avepProb(avep *profile.Snapshot, addr int) (float64, bool) {
	b, found := avep.Blocks[addr]
	if !found || b.Use == 0 {
		return 0, false
	}
	return b.BranchProb(), true
}

// Normalize builds the NAVEP view of inip against avep. The avep
// snapshot must be unoptimized (no regions).
func Normalize(inip, avep *profile.Snapshot) (*Result, error) {
	if len(avep.Regions) != 0 {
		return nil, fmt.Errorf("navep: average profile must be unoptimized, has %d regions", len(avep.Regions))
	}
	if err := inip.Validate(); err != nil {
		return nil, fmt.Errorf("navep: invalid INIP snapshot: %w", err)
	}
	res := &Result{}

	// Plain blocks: weight and average probability straight from AVEP.
	// Addresses are visited in sorted order so the item list — and hence
	// the floating-point summation order of every downstream metric — is
	// identical from run to run.
	addrs := make([]int, 0, len(inip.Blocks))
	for addr := range inip.Blocks {
		addrs = append(addrs, addr)
	}
	sort.Ints(addrs)
	for _, addr := range addrs {
		blk := inip.Blocks[addr]
		if !blk.HasBranch {
			continue
		}
		ab, found := avep.Blocks[addr]
		if !found || ab.Use == 0 {
			res.MissingInAVEP++
			continue
		}
		res.Blocks = append(res.Blocks, BlockItem{
			Addr:   addr,
			CopyID: -1,
			BT:     blk.BranchProb(),
			BM:     ab.BranchProb(),
			W:      float64(ab.Use),
		})
	}
	if len(inip.Regions) == 0 {
		return res, nil
	}

	// Group region copies by original address.
	type copyRef struct {
		r  *profile.Region
		rb *profile.RegionBlock
	}
	var copies []copyRef
	byAddr := make(map[int][]int) // addr -> indexes into copies
	nodeOf := make(map[int]int)   // copy ID -> node index
	for _, r := range inip.Regions {
		for i := range r.Blocks {
			rb := &r.Blocks[i]
			byAddr[rb.Addr] = append(byAddr[rb.Addr], len(copies))
			copies = append(copies, copyRef{r: r, rb: rb})
		}
	}

	sys := markov.NewSystem()
	for i, c := range copies {
		id := sys.AddNode(fmt.Sprintf("r%d/b%d@%d", c.r.ID, c.rb.ID, c.rb.Addr))
		if id != i {
			return nil, fmt.Errorf("navep: node numbering skew")
		}
		nodeOf[c.rb.ID] = i
	}

	// Edge probabilities follow the AVEP assignment; when AVEP lacks the
	// block (possible only if it never ran there), fall back to the
	// frozen probability so the flow still distributes.
	probOf := func(rb *profile.RegionBlock) float64 {
		if p, found := avepProb(avep, rb.Addr); found {
			return p
		}
		return rb.BranchProb()
	}
	for _, c := range copies {
		rb := c.rb
		var pTaken float64
		switch {
		case rb.HasBranch:
			pTaken = probOf(rb)
		case rb.TakenNext != -1 || (rb.TakenTarget >= 0 && rb.FallTarget < 0):
			pTaken = 1
		}
		src := nodeOf[rb.ID]
		if rb.TakenNext != -1 {
			if err := sys.AddEdge(nodeOf[rb.TakenNext], src, pTaken); err != nil {
				return nil, err
			}
		}
		if rb.FallNext != -1 {
			if err := sys.AddEdge(nodeOf[rb.FallNext], src, 1-pTaken); err != nil {
				return nil, err
			}
		}
	}

	// Constraints: entries pin or absorb the remainder; interiors take
	// inflow. Sorted address order keeps the constraint system — and the
	// solver's rounding — deterministic.
	caddrs := make([]int, 0, len(byAddr))
	for addr := range byAddr {
		caddrs = append(caddrs, addr)
	}
	sort.Ints(caddrs)
	for _, addr := range caddrs {
		group := byAddr[addr]
		if len(group) > 1 {
			res.DuplicatedAddrs++
		}
		var freq float64
		if ab, found := avep.Blocks[addr]; found {
			freq = float64(ab.Use)
		}
		entryIdx := -1
		for _, ci := range group {
			c := copies[ci]
			if c.r.Entry == c.rb.ID {
				entryIdx = ci
				break
			}
		}
		for _, ci := range group {
			switch {
			case ci == entryIdx && len(group) == 1:
				if err := sys.Pin(ci, freq); err != nil {
					return nil, err
				}
			case ci == entryIdx:
				others := make([]int, 0, len(group)-1)
				for _, o := range group {
					if o != ci {
						others = append(others, o)
					}
				}
				if err := sys.Remainder(ci, freq, others); err != nil {
					return nil, err
				}
			default:
				if err := sys.Inflow(ci); err != nil {
					return nil, err
				}
				res.Unknowns++
			}
		}
	}

	x, err := sys.Solve()
	if err != nil {
		return nil, err
	}

	// Per-copy branch items.
	for i, c := range copies {
		rb := c.rb
		if !rb.HasBranch {
			continue
		}
		bm, found := avepProb(avep, rb.Addr)
		if !found {
			res.MissingInAVEP++
			continue
		}
		res.Blocks = append(res.Blocks, BlockItem{
			Addr:   rb.Addr,
			CopyID: rb.ID,
			BT:     rb.BranchProb(),
			BM:     bm,
			W:      x[i],
		})
	}

	// Per-region probability pairs.
	avepProbFn := func(rb *profile.RegionBlock) float64 { return probOf(rb) }
	for _, r := range inip.Regions {
		entryNode, ok := nodeOf[r.Entry]
		if !ok {
			return nil, fmt.Errorf("navep: region %d entry missing", r.ID)
		}
		item := RegionItem{Region: r, W: x[entryNode]}
		switch r.Kind {
		case profile.RegionTrace:
			if item.CT, err = region.CompletionProb(r, region.FrozenProb); err != nil {
				return nil, err
			}
			if item.CM, err = region.CompletionProb(r, avepProbFn); err != nil {
				return nil, err
			}
			res.Traces = append(res.Traces, item)
		case profile.RegionLoop:
			if item.LT, err = region.LoopBackProb(r, region.FrozenProb); err != nil {
				return nil, err
			}
			// Continuous trip-count instrumentation, when present,
			// supersedes the frozen-counter prediction.
			if r.HasContinuousLP {
				item.LT = r.ContinuousLP
			}
			if item.LM, err = region.LoopBackProb(r, avepProbFn); err != nil {
				return nil, err
			}
			res.Loops = append(res.Loops, item)
		}
	}
	return res, nil
}
