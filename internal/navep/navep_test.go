package navep

import (
	"math"
	"testing"

	"repro/internal/profile"
)

func avepWith(blocks map[int][2]uint64) *profile.Snapshot {
	// blocks maps addr -> {use, taken}; every block is branch-ending.
	s := profile.NewSnapshot("p", "ref", 0, false)
	for addr, ut := range blocks {
		s.Blocks[addr] = &profile.Block{
			Addr: addr, End: addr + 1, Use: ut[0], Taken: ut[1],
			HasBranch: true, TakenTarget: addr + 10, FallTarget: addr + 2,
		}
	}
	return s
}

func TestNormalizePlainBlocksOnly(t *testing.T) {
	inip := profile.NewSnapshot("p", "ref", 500, true)
	inip.Blocks[10] = &profile.Block{Addr: 10, Use: 100, Taken: 80, HasBranch: true, TakenTarget: 20, FallTarget: 12}
	inip.Blocks[30] = &profile.Block{Addr: 30, Use: 50, HasBranch: false, TakenTarget: -1, FallTarget: -1}
	avep := avepWith(map[int][2]uint64{10: {1000, 600}})

	res, err := Normalize(inip, avep)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Blocks) != 1 {
		t.Fatalf("items = %+v, want 1 (non-branch blocks excluded)", res.Blocks)
	}
	it := res.Blocks[0]
	if it.Addr != 10 || it.CopyID != -1 {
		t.Fatalf("item identity wrong: %+v", it)
	}
	if math.Abs(it.BT-0.8) > 1e-12 || math.Abs(it.BM-0.6) > 1e-12 || it.W != 1000 {
		t.Fatalf("item values wrong: %+v", it)
	}
	if len(res.Traces) != 0 || len(res.Loops) != 0 || res.Unknowns != 0 {
		t.Fatalf("unexpected region output: %+v", res)
	}
}

func TestNormalizeSkipsBlocksMissingInAVEP(t *testing.T) {
	inip := profile.NewSnapshot("p", "ref", 500, true)
	inip.Blocks[10] = &profile.Block{Addr: 10, Use: 100, Taken: 80, HasBranch: true}
	res, err := Normalize(inip, profile.NewSnapshot("p", "ref", 0, false))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Blocks) != 0 || res.MissingInAVEP != 1 {
		t.Fatalf("missing-block handling wrong: %+v", res)
	}
}

func TestNormalizeRejectsOptimizedAVEP(t *testing.T) {
	avep := profile.NewSnapshot("p", "ref", 0, false)
	avep.Regions = []*profile.Region{{ID: 0, Entry: 0, Blocks: []profile.RegionBlock{{ID: 0, TakenNext: -1, FallNext: -1}}}}
	if _, err := Normalize(profile.NewSnapshot("p", "ref", 1, true), avep); err == nil {
		t.Fatal("Normalize accepted an optimized AVEP")
	}
}

// loopRegion builds a two-block loop region: entry addr 30 -> member
// addr 40 -> back to entry, with frozen probabilities 0.9 / 0.95.
func loopRegion() *profile.Region {
	return &profile.Region{
		ID:    0,
		Kind:  profile.RegionLoop,
		Entry: 1,
		Blocks: []profile.RegionBlock{
			{ID: 1, Addr: 30, Use: 100, Taken: 90, HasBranch: true, TakenNext: 2, FallNext: -1, TakenTarget: 40, FallTarget: 32},
			{ID: 2, Addr: 40, Use: 90, Taken: 85, HasBranch: true, TakenNext: 1, FallNext: -1, TakenTarget: 30, FallTarget: 42},
		},
	}
}

func TestNormalizeUniqueRegionBlocks(t *testing.T) {
	inip := profile.NewSnapshot("p", "ref", 100, true)
	inip.Regions = []*profile.Region{loopRegion()}
	avep := avepWith(map[int][2]uint64{
		30: {5000, 4500}, // BM = 0.9
		40: {4500, 4050}, // BM = 0.9
	})
	res, err := Normalize(inip, avep)
	if err != nil {
		t.Fatal(err)
	}
	// Entry pinned to AVEP freq; member gets inflow 5000*0.9.
	weights := map[int]float64{}
	for _, it := range res.Blocks {
		weights[it.Addr] = it.W
	}
	if math.Abs(weights[30]-5000) > 1e-9 {
		t.Fatalf("entry weight = %v, want 5000", weights[30])
	}
	if math.Abs(weights[40]-4500) > 1e-9 {
		t.Fatalf("member weight = %v, want 4500", weights[40])
	}
	if len(res.Loops) != 1 {
		t.Fatalf("loops = %+v", res.Loops)
	}
	li := res.Loops[0]
	if math.Abs(li.W-5000) > 1e-9 {
		t.Fatalf("loop weight = %v, want 5000", li.W)
	}
	// LT under frozen probs: 0.9 * (85/90); LM under AVEP probs:
	// 0.9 * 0.9.
	wantLT := 0.9 * (85.0 / 90.0)
	if math.Abs(li.LT-wantLT) > 1e-12 {
		t.Fatalf("LT = %v, want %v", li.LT, wantLT)
	}
	if math.Abs(li.LM-0.81) > 1e-12 {
		t.Fatalf("LM = %v, want 0.81", li.LM)
	}
	if res.DuplicatedAddrs != 0 {
		t.Fatalf("DuplicatedAddrs = %d, want 0", res.DuplicatedAddrs)
	}
}

func TestNormalizeDuplicatedInteriorCopies(t *testing.T) {
	// Two trace regions both absorb addr 30 as an interior member.
	// r1: 20 -(taken, BM 0.5)-> 30; r2: 50 -(taken, BM 0.25)-> 30.
	r1 := &profile.Region{
		ID: 0, Kind: profile.RegionTrace, Entry: 1,
		Blocks: []profile.RegionBlock{
			{ID: 1, Addr: 20, Use: 100, Taken: 90, HasBranch: true, TakenNext: 2, FallNext: -1},
			{ID: 2, Addr: 30, Use: 100, Taken: 50, HasBranch: true, TakenNext: -1, FallNext: -1},
		},
	}
	r2 := &profile.Region{
		ID: 1, Kind: profile.RegionTrace, Entry: 3,
		Blocks: []profile.RegionBlock{
			{ID: 3, Addr: 50, Use: 100, Taken: 80, HasBranch: true, TakenNext: 4, FallNext: -1},
			{ID: 4, Addr: 30, Use: 100, Taken: 50, HasBranch: true, TakenNext: -1, FallNext: -1},
		},
	}
	inip := profile.NewSnapshot("p", "ref", 100, true)
	inip.Regions = []*profile.Region{r1, r2}
	avep := avepWith(map[int][2]uint64{
		20: {1000, 500},
		50: {2000, 500},
		30: {1200, 600},
	})
	res, err := Normalize(inip, avep)
	if err != nil {
		t.Fatal(err)
	}
	if res.DuplicatedAddrs != 1 {
		t.Fatalf("DuplicatedAddrs = %d, want 1", res.DuplicatedAddrs)
	}
	// Copy weights: r1 copy = 1000*0.5 = 500; r2 copy = 2000*0.25 = 500.
	var w1, w2 float64
	for _, it := range res.Blocks {
		switch it.CopyID {
		case 2:
			w1 = it.W
		case 4:
			w2 = it.W
		}
	}
	if math.Abs(w1-500) > 1e-9 || math.Abs(w2-500) > 1e-9 {
		t.Fatalf("copy weights = %v, %v; want 500, 500", w1, w2)
	}
	// All copies carry the AVEP branch probability of addr 30 (0.5).
	for _, it := range res.Blocks {
		if it.Addr == 30 && math.Abs(it.BM-0.5) > 1e-12 {
			t.Fatalf("copy BM = %v, want AVEP 0.5", it.BM)
		}
	}
}

func TestNormalizeDuplicatedEntryTakesRemainder(t *testing.T) {
	// Region 1's entry is addr 30; region 2 holds an interior copy of
	// 30 fed with 400. The entry copy must absorb 1200-400 = 800.
	r1 := &profile.Region{
		ID: 0, Kind: profile.RegionTrace, Entry: 1,
		Blocks: []profile.RegionBlock{
			{ID: 1, Addr: 30, Use: 100, Taken: 70, HasBranch: true, TakenNext: 2, FallNext: -1},
			{ID: 2, Addr: 60, Use: 100, Taken: 10, HasBranch: true, TakenNext: -1, FallNext: -1},
		},
	}
	r2 := &profile.Region{
		ID: 1, Kind: profile.RegionTrace, Entry: 3,
		Blocks: []profile.RegionBlock{
			{ID: 3, Addr: 20, Use: 100, Taken: 90, HasBranch: true, TakenNext: 4, FallNext: -1},
			{ID: 4, Addr: 30, Use: 100, Taken: 70, HasBranch: true, TakenNext: -1, FallNext: -1},
		},
	}
	inip := profile.NewSnapshot("p", "ref", 100, true)
	inip.Regions = []*profile.Region{r1, r2}
	avep := avepWith(map[int][2]uint64{
		20: {1000, 400}, // BM 0.4 -> inflow into r2's copy = 400
		30: {1200, 840},
		60: {500, 100},
	})
	res, err := Normalize(inip, avep)
	if err != nil {
		t.Fatal(err)
	}
	var entryW, copyW float64
	for _, it := range res.Blocks {
		switch it.CopyID {
		case 1:
			entryW = it.W
		case 4:
			copyW = it.W
		}
	}
	if math.Abs(copyW-400) > 1e-9 {
		t.Fatalf("interior copy weight = %v, want 400", copyW)
	}
	if math.Abs(entryW-800) > 1e-9 {
		t.Fatalf("entry remainder weight = %v, want 800", entryW)
	}
}

func TestNormalizeTraceProbabilities(t *testing.T) {
	// Trace 10 -> 20 with frozen probs (0.9 taken) but AVEP prob 0.6:
	// CT = 0.9, CM = 0.6.
	r := &profile.Region{
		ID: 0, Kind: profile.RegionTrace, Entry: 1,
		Blocks: []profile.RegionBlock{
			{ID: 1, Addr: 10, Use: 100, Taken: 90, HasBranch: true, TakenNext: 2, FallNext: -1},
			{ID: 2, Addr: 20, Use: 90, Taken: 45, HasBranch: true, TakenNext: -1, FallNext: -1},
		},
	}
	inip := profile.NewSnapshot("p", "ref", 100, true)
	inip.Regions = []*profile.Region{r}
	avep := avepWith(map[int][2]uint64{10: {1000, 600}, 20: {700, 350}})
	res, err := Normalize(inip, avep)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Traces) != 1 {
		t.Fatalf("traces = %+v", res.Traces)
	}
	tr := res.Traces[0]
	if math.Abs(tr.CT-0.9) > 1e-12 {
		t.Fatalf("CT = %v, want 0.9", tr.CT)
	}
	if math.Abs(tr.CM-0.6) > 1e-12 {
		t.Fatalf("CM = %v, want 0.6", tr.CM)
	}
	if math.Abs(tr.W-1000) > 1e-9 {
		t.Fatalf("trace weight = %v, want 1000", tr.W)
	}
}
